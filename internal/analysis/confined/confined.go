// Package confined defines an srclint analyzer enforcing goroutine
// confinement of struct fields — the convention that gives the sharded
// engine its lock-free hot path. A field annotated
//
//	//srclint:confined <owner>[,<owner>...]
//
// belongs to the goroutine running the named worker function (the
// engine's shard.run loop). The analyzer walks the package call graph and
// collects every function that touches a confined field, directly or
// through synchronous calls. Each such function must be one of:
//
//   - the owner itself (or code reached only from it),
//   - a function whose confined accesses are dominated by a handoff
//     guard: an `if <h>.Load() { return/panic }` check of a field
//     annotated `//srclint:handoff` (an atomic.Bool flipped exactly once
//     when the worker goroutines start). The guard proves the access runs
//     in the single-goroutine setup phase — the engine's Serial view.
//
// Everything else is a finding: a `go` launch whose goroutine reaches
// confined state is a second root (reported at the launch site), and an
// unguarded accessor reachable from outside the owner is reported at its
// declaration. One diagnostic per function / launch site, naming the
// fields involved, so one missing guard is exactly one finding.
package confined

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"srccache/internal/analysis"
	"srccache/internal/analysis/callgraph"
	"srccache/internal/analysis/cfg"
)

// Analyzer is the goroutine-confinement check.
var Analyzer = &analysis.Analyzer{
	Name: "confined",
	Doc:  "fields marked //srclint:confined may only be reached from their owner goroutine or behind a //srclint:handoff guard",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	fields, handoff := collectDirectives(pass)
	if len(fields) == 0 {
		return nil
	}
	g := callgraph.Build(pass.Fset, pass.Files, pass.TypesInfo)
	c := &checker{
		pass:    pass,
		graph:   g,
		fields:  fields,
		handoff: handoff,
		access:  make(map[*callgraph.Node][]access),
		inD:     make(map[*callgraph.Node]bool),
	}
	c.collectAccesses()
	// Phase 1: full synchronous closure of the accessor set, used to judge
	// guard placement (a call into any accessor needs the guard fact).
	c.propagate(false)
	c.markOwnersAndGuards()
	// Phase 2: a guarded function re-checks the handoff at runtime, so it
	// does not make its *callers* accessors — rebuild the closure stopping
	// at guarded nodes, then judge what remains.
	c.inD = make(map[*callgraph.Node]bool)
	c.propagate(true)
	c.classify()
	c.report()
	return nil
}

// fieldInfo is one //srclint:confined annotation.
type fieldInfo struct {
	obj    types.Object
	name   string   // "shard.cache"
	owners []string // worker-function names
}

// access is one direct read or write of a confined field.
type access struct {
	field *fieldInfo
	pos   ast.Node
}

func collectDirectives(pass *analysis.Pass) (map[types.Object]*fieldInfo, map[types.Object]bool) {
	fields := make(map[types.Object]*fieldInfo)
	handoff := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			ts, ok := x.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if _, ok := analysis.FieldDirective(field, "handoff"); ok {
					for _, id := range field.Names {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							handoff[obj] = true
						}
					}
				}
				args, ok := analysis.FieldDirective(field, "confined")
				if !ok {
					continue
				}
				// The owner list ends at the first whitespace (like
				// //srclint:allow); anything after is free-form prose.
				args, _, _ = strings.Cut(args, " ")
				var owners []string
				for _, o := range strings.Split(args, ",") {
					if o = strings.TrimSpace(o); o != "" {
						owners = append(owners, o)
					}
				}
				for _, id := range field.Names {
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						continue
					}
					fields[obj] = &fieldInfo{
						obj:    obj,
						name:   ts.Name.Name + "." + id.Name,
						owners: owners,
					}
				}
			}
			return true
		})
	}
	return fields, handoff
}

type checker struct {
	pass    *analysis.Pass
	graph   *callgraph.Graph
	fields  map[types.Object]*fieldInfo
	handoff map[types.Object]bool

	access map[*callgraph.Node][]access // direct accesses per node
	inD    map[*callgraph.Node]bool     // reaches confined state synchronously

	owner   map[*callgraph.Node]bool // node is a declared owner
	guarded map[*callgraph.Node]bool // handoff guard dominates all accesses
	cleared map[*callgraph.Node]bool // safe: owner-only reachable or guarded
}

// collectAccesses records every selector resolving to a confined field.
func (c *checker) collectAccesses() {
	for _, n := range c.graph.Nodes {
		n.Walk(func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := c.pass.TypesInfo.Selections[sel]
			if s == nil {
				return true
			}
			obj, _ := s.Obj().(*types.Var)
			if obj == nil {
				return true
			}
			if fi := c.fields[types.Object(obj)]; fi != nil {
				c.access[n] = append(c.access[n], access{field: fi, pos: sel})
			}
			return true
		})
	}
}

// propagate closes the accessor set over synchronous (call/defer) edges:
// a caller of an accessor is an accessor. With stopAtGuarded set, guarded
// nodes join the set but do not infect their callers.
func (c *checker) propagate(stopAtGuarded bool) {
	var worklist []*callgraph.Node
	for _, n := range c.graph.Nodes {
		if len(c.access[n]) > 0 {
			c.inD[n] = true
			worklist = append(worklist, n)
		}
	}
	for len(worklist) > 0 {
		n := worklist[0]
		worklist = worklist[1:]
		if stopAtGuarded && c.guarded[n] {
			continue
		}
		for _, e := range n.In {
			if e.Kind == callgraph.Go {
				continue // a launch is a root, not synchronous reachability
			}
			if !c.inD[e.Caller] {
				c.inD[e.Caller] = true
				worklist = append(worklist, e.Caller)
			}
		}
	}
}

// markOwnersAndGuards records which accessors are owner loops or carry a
// dominating handoff guard, judged against the phase-1 closure.
func (c *checker) markOwnersAndGuards() {
	c.owner = make(map[*callgraph.Node]bool)
	c.guarded = make(map[*callgraph.Node]bool)
	for n := range c.inD {
		if c.isOwner(n) {
			c.owner[n] = true
		} else if c.hasDominatingGuard(n) {
			c.guarded[n] = true
		}
	}
}

// isOwner reports whether n is a declared owner of every field it reaches.
func (c *checker) isOwner(n *callgraph.Node) bool {
	owners := c.ownersFor(n)
	if len(owners) == 0 {
		return false
	}
	for _, o := range owners {
		if n.Name == o || strings.HasSuffix(n.Name, "."+o) {
			return true
		}
	}
	return false
}

// ownersFor unions the owner lists of every confined field n reaches. In
// practice a package has one worker loop; the union keeps the rule sound
// when there are several.
func (c *checker) ownersFor(n *callgraph.Node) []string {
	seen := make(map[string]bool)
	var out []string
	for _, fi := range c.sortedFields() {
		for _, o := range fi.owners {
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	_ = n
	return out
}

// sortedFields returns the confined fields in declaration order.
func (c *checker) sortedFields() []*fieldInfo {
	out := make([]*fieldInfo, 0, len(c.fields))
	for _, fi := range c.fields {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj.Pos() < out[j].obj.Pos() })
	return out
}

// classify decides, for every accessor, whether it is safe: an owner, a
// guarded function, or reachable only from safe functions. Greatest
// fixpoint: start from "every accessor is cleared" and strike out nodes
// until stable, so mutual recursion among owner-only helpers converges to
// cleared rather than flagged.
func (c *checker) classify() {
	c.cleared = make(map[*callgraph.Node]bool)
	for n := range c.inD {
		c.cleared[n] = true
	}
	for changed := true; changed; {
		changed = false
		for _, n := range c.graph.Nodes {
			if !c.cleared[n] || c.owner[n] || c.guarded[n] {
				continue
			}
			if !c.callersSafe(n) {
				delete(c.cleared, n)
				changed = true
			}
		}
	}
}

// callersSafe reports whether n is reachable only from cleared code on
// the owner's goroutine: not exported, never `go`-launched, and every
// synchronous caller cleared. A node nobody calls has no proven owner
// path and is not safe (its future caller could be any goroutine).
func (c *checker) callersSafe(n *callgraph.Node) bool {
	if n.Decl != nil && n.Decl.Name.IsExported() {
		return false
	}
	if len(n.In) == 0 {
		return false
	}
	for _, e := range n.In {
		if e.Kind == callgraph.Go {
			return false // reported at the launch site
		}
		if !c.cleared[e.Caller] {
			return false
		}
	}
	return true
}

// hasDominatingGuard reports whether every confined access and every call
// into the accessor set inside n happens strictly after a handoff guard
// on every CFG path: an if statement whose condition reads a
// //srclint:handoff field via .Load() and whose then-branch leaves the
// function. Accesses inside a guard's then-branch (the post-handoff
// world) disqualify the function entirely.
func (c *checker) hasDominatingGuard(n *callgraph.Node) bool {
	if len(c.handoff) == 0 {
		return false
	}
	body := n.Body()
	if body == nil {
		return false
	}
	// Recognize guards and remember their condition expressions and
	// then-branch extents.
	guards := make(map[ast.Expr]bool)
	type span struct{ lo, hi int }
	var thenSpans []span
	n.Walk(func(x ast.Node) bool {
		ifs, ok := x.(*ast.IfStmt)
		if !ok {
			return true
		}
		if c.readsHandoff(ifs.Cond) && branchLeaves(ifs.Body) {
			guards[ifs.Cond] = true
			thenSpans = append(thenSpans, span{int(ifs.Body.Pos()), int(ifs.Body.End())})
		}
		return true
	})
	if len(guards) == 0 {
		return false
	}
	inThen := func(pos ast.Node) bool {
		p := int(pos.Pos())
		for _, s := range thenSpans {
			if p >= s.lo && p < s.hi {
				return true
			}
		}
		return false
	}
	for _, a := range c.access[n] {
		if inThen(a.pos) {
			return false
		}
	}

	// Must-dataflow: the "handoff checked" fact is generated at a guard
	// condition and must hold before every access and every call into
	// the accessor set.
	type guardFact struct{}
	p := cfg.Problem{Must: true, Transfer: func(x ast.Node, facts cfg.Facts) {
		if e, ok := x.(ast.Expr); ok && guards[e] {
			facts[guardFact{}] = true
		}
	}}
	g := cfg.New(body)
	ins := cfg.Solve(g, p)
	ok := true
	cfg.Visit(g, p, ins, func(x ast.Node, before cfg.Facts) {
		if !ok || before[guardFact{}] {
			return
		}
		if c.stmtTouchesConfined(x) {
			ok = false
		}
	})
	return ok
}

// stmtTouchesConfined reports whether one CFG node accesses a confined
// field or synchronously calls into the accessor set.
func (c *checker) stmtTouchesConfined(x ast.Node) bool {
	found := false
	ast.Inspect(x, func(y ast.Node) bool {
		if found {
			return false
		}
		switch y := y.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			if s := c.pass.TypesInfo.Selections[y]; s != nil {
				if v, ok := s.Obj().(*types.Var); ok && c.fields[types.Object(v)] != nil {
					found = true
				}
			}
		case *ast.CallExpr:
			for _, callee := range c.graph.Callees(y) {
				if c.inD[callee] {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// readsHandoff reports whether an expression contains <handoff>.Load().
func (c *checker) readsHandoff(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Load" {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := c.pass.TypesInfo.Selections[inner]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok && c.handoff[types.Object(v)] {
				found = true
			}
		}
		return true
	})
	return found
}

// branchLeaves reports whether a guard's then-branch exits the function:
// its last statement is a return or a call to panic/os.Exit.
func branchLeaves(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					return id.Name == "os" && fun.Sel.Name == "Exit"
				}
			}
		}
	}
	return false
}

// report emits the findings: one per foreign launch site, one per
// unsafe accessor function.
func (c *checker) report() {
	// Launch findings: a `go` edge into the accessor set whose target is
	// not the owner loop. Deduped per launch site.
	launched := make(map[*callgraph.Node]bool)
	type site struct {
		pos    ast.Node
		fields map[string]bool
	}
	var sites []*site
	bySite := make(map[ast.Node]*site)
	for _, n := range c.graph.Nodes {
		for _, e := range n.Out {
			if e.Kind != callgraph.Go || !c.inD[e.Callee] {
				continue
			}
			if c.owner[e.Callee] || c.guarded[e.Callee] {
				continue
			}
			launched[e.Callee] = true
			s := bySite[e.Site]
			if s == nil {
				s = &site{pos: e.Site, fields: make(map[string]bool)}
				bySite[e.Site] = s
				sites = append(sites, s)
			}
			for _, fn := range c.reachedFields(e.Callee) {
				s.fields[fn] = true
			}
		}
	}
	for _, s := range sites {
		c.pass.Reportf(s.pos.Pos(),
			"goroutine launched here reaches confined field(s) %s owned by another goroutine's worker loop (//srclint:confined); route the work through the owner's queue (//srclint:allow confined to override)",
			joinSorted(s.fields))
	}

	// Function findings: accessors that are neither owner, guarded, nor
	// cleared — and not already reported at a launch site.
	for _, n := range c.graph.Nodes {
		if !c.inD[n] || c.cleared[n] || launched[n] {
			continue
		}
		fields := make(map[string]bool)
		for _, fn := range c.reachedFields(n) {
			fields[fn] = true
		}
		c.pass.Reportf(n.Pos(),
			"%s reaches confined field(s) %s (//srclint:confined) but is neither the owner loop nor guarded by a //srclint:handoff check dominating every access (//srclint:allow confined to override)",
			n.Name, joinSorted(fields))
	}
}

// reachedFields names the confined fields n reaches, directly or through
// synchronous callees.
func (c *checker) reachedFields(n *callgraph.Node) []string {
	seen := make(map[*callgraph.Node]bool)
	fields := make(map[string]bool)
	var walk func(m *callgraph.Node)
	walk = func(m *callgraph.Node) {
		if seen[m] {
			return
		}
		seen[m] = true
		for _, a := range c.access[m] {
			fields[a.field.name] = true
		}
		for _, e := range m.Out {
			if e.Kind != callgraph.Go && c.inD[e.Callee] {
				walk(e.Callee)
			}
		}
	}
	walk(n)
	return sortedKeys(fields)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func joinSorted(m map[string]bool) string {
	return strings.Join(sortedKeys(m), ", ")
}
