// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract on top of this
// repository's dependency-free analysis core.
//
// Fixtures live under <testdata>/src in GOPATH-style layout: the fixture
// import path "a/internal/src" is the directory testdata/src/a/internal/src.
// Fixture imports resolve first against other fixture directories, then
// against the standard library (via export data produced by `go list
// -export`, so tests need the go tool on PATH but no network).
//
// An expectation is a trailing comment of the form
//
//	//\x20want "regexp" `another`
//
// on the line where the diagnostic must be reported. Every diagnostic must
// be matched by exactly one expectation and vice versa.
package analysistest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"srccache/internal/analysis"
	"srccache/internal/analysis/modfacts"
)

// TestData returns the calling test package's testdata directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run applies a to each fixture package (named by import path under
// testdata/src) and reports mismatches between diagnostics and // want
// expectations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		fset:   token.NewFileSet(),
		srcdir: filepath.Join(testdata, "src"),
		pkgs:   make(map[string]*fixturePkg),
	}
	for _, path := range pkgPaths {
		fp, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		checkPackage(t, l, a, fp)
	}
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	facts *analysis.PackageFacts // computed on first request
}

type loader struct {
	fset   *token.FileSet
	srcdir string
	pkgs   map[string]*fixturePkg
	std    types.Importer
}

// factsFor mirrors the driver's dependency-facts plumbing for fixture
// packages: any fixture package loaded so far (the package under test's
// imports, recursively) answers with its modfacts summary, memoized.
func (l *loader) factsFor(path string) *analysis.PackageFacts {
	fp := l.pkgs[path]
	if fp == nil {
		return nil // standard library or unknown: no facts
	}
	if fp.facts == nil {
		dirs := analysis.ParseDirectives(l.fset, fp.files)
		fp.facts = modfacts.Compute(l.fset, fp.files, fp.info, fp.pkg, dirs, l.factsFor)
	}
	return fp.facts
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		if fp == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return fp, nil
	}
	l.pkgs[path] = nil // cycle marker
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = fp
	return fp, nil
}

// importPkg resolves fixture imports: fixture directories win, everything
// else is assumed to be standard library.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(l.srcdir, filepath.FromSlash(path))); err == nil && st.IsDir() {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	if l.std == nil {
		l.std = stdImporter(l.fset)
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdExports maps standard-library package paths to export-data files,
// produced once per test process by `go list -export`.
var (
	stdOnce    sync.Once
	stdFiles   map[string]string
	stdListErr error
)

func stdImporter(fset *token.FileSet) types.Importer {
	stdOnce.Do(func() {
		stdFiles, stdListErr = listStdExports()
	})
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if stdListErr != nil {
			return nil, stdListErr
		}
		file, ok := stdFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in `go list -export std` output)", path)
		}
		return os.Open(file)
	})
}

func listStdExports() (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", "std")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export std: %v", err)
	}
	files := make(map[string]string)
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			files[p.ImportPath] = p.Export
		}
	}
	return files, nil
}

// ---- expectation checking ------------------------------------------------

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func checkPackage(t *testing.T, l *loader, a *analysis.Analyzer, fp *fixturePkg) {
	t.Helper()
	fset := l.fset
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     fp.files,
		Pkg:       fp.pkg,
		TypesInfo: fp.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		DepFacts:  l.factsFor,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	wants, err := collectWants(fset, fp.files)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.used || w.file != posn.Filename || w.line != posn.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%v: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

var wantTokenRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Slash)
				for _, tok := range wantTokenRe.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(tok)
					if err != nil {
						return nil, fmt.Errorf("%v: bad want token %s: %v", posn, tok, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%v: bad want regexp %q: %v", posn, pat, err)
					}
					out = append(out, &expectation{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return out, nil
}
