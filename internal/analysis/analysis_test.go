package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestNormalizePkgPath(t *testing.T) {
	tests := []struct{ in, want string }{
		{"srccache/internal/src", "srccache/internal/src"},
		{"srccache/internal/src [srccache/internal/src.test]", "srccache/internal/src"},
		{"srccache/internal/src.test", "srccache/internal/src"},
		{"srccache/internal/src_test [srccache/internal/src.test]", "srccache/internal/src"},
		{"a/tools", "a/tools"},
	}
	for _, tt := range tests {
		if got := NormalizePkgPath(tt.in); got != tt.want {
			t.Errorf("NormalizePkgPath(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPathMatches(t *testing.T) {
	targets := []string{"internal/src", "internal/raid"}
	tests := []struct {
		path string
		want bool
	}{
		{"srccache/internal/src", true},
		{"internal/src", true},
		{"fixture/internal/src", true},
		{"srccache/internal/src [srccache/internal/src.test]", true},
		{"srccache/internal/srcs", false},
		{"srccache/internal/flash", false},
		{"badinternal/src", false}, // suffix must start at a path boundary
	}
	for _, tt := range tests {
		if got := PathMatches(tt.path, targets); got != tt.want {
			t.Errorf("PathMatches(%q) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

// parseDirs parses src as one file and returns its directives plus a
// position lookup by line.
func parseDirs(t *testing.T, src string) (*Directives, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ParseDirectives(fset, []*ast.File{f}), fset
}

func TestDirectiveSameLineAndLineAbove(t *testing.T) {
	d, _ := parseDirs(t, `package p

//srclint:allow wallclock above-line reason
var a = 1
var b = 2 //srclint:allow seededrand same-line reason
`)
	// Line-above directive covers line 4; same-line directive covers line 5.
	if !d.Covers("wallclock", token.Position{Filename: "dir.go", Line: 4}) {
		t.Error("directive on the line above did not cover the next line")
	}
	if !d.Covers("seededrand", token.Position{Filename: "dir.go", Line: 5}) {
		t.Error("trailing same-line directive did not cover its own line")
	}
	// A directive never covers two lines below, or a different file.
	if d.Covers("wallclock", token.Position{Filename: "dir.go", Line: 5}) {
		t.Error("directive leaked two lines down")
	}
	if d.Covers("seededrand", token.Position{Filename: "other.go", Line: 5}) {
		t.Error("directive leaked into another file")
	}
	if stale := d.Stale(nil); len(stale) != 0 {
		t.Errorf("both directives were used, got stale: %v", stale)
	}
}

func TestDirectiveCommaSeparatedNames(t *testing.T) {
	d, _ := parseDirs(t, `package p

var a = 1 //srclint:allow wallclock,seededrand,maprange progress timing only
`)
	posn := token.Position{Filename: "dir.go", Line: 3}
	for _, name := range []string{"wallclock", "seededrand"} {
		if !d.Covers(name, posn) {
			t.Errorf("comma-separated directive does not cover %q", name)
		}
	}
	// maprange was named but never fires: it alone must be reported stale.
	stale := d.Stale(nil)
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "maprange") {
		t.Errorf("want exactly the unused maprange entry stale, got %v", stale)
	}
}

func TestDirectiveUnknownAnalyzerIsStale(t *testing.T) {
	d, _ := parseDirs(t, `package p

var a = 1 //srclint:allow nosuchcheck misremembered name
`)
	// Nothing ever reports under "nosuchcheck", so the entry is stale —
	// the rot the stale-suppression rule exists to catch.
	stale := d.Stale(nil)
	if len(stale) != 1 {
		t.Fatalf("want 1 stale entry, got %v", stale)
	}
	if !strings.Contains(stale[0].Message, "nosuchcheck") {
		t.Errorf("stale message does not name the directive: %s", stale[0].Message)
	}
	if stale[0].Category != "staleallow" {
		t.Errorf("stale category = %q, want staleallow", stale[0].Category)
	}
}

func TestDirectiveReasonTextCannotNameChecks(t *testing.T) {
	// Names stop at the first token that is not a lower-case identifier;
	// everything after is reason text even if it matches a check name.
	d, _ := parseDirs(t, `package p

var a = 1 //srclint:allow wallclock B ioerr
`)
	posn := token.Position{Filename: "dir.go", Line: 3}
	if !d.Covers("wallclock", posn) {
		t.Error("first name not parsed")
	}
	if d.Covers("ioerr", posn) {
		t.Error("check name inside reason text was honored")
	}
}

// parseStruct returns the fields of the first struct type in src.
func parseStruct(t *testing.T, src string) []*ast.Field {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ann.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var fields []*ast.Field
	ast.Inspect(f, func(x ast.Node) bool {
		if st, ok := x.(*ast.StructType); ok && fields == nil {
			fields = st.Fields.List
		}
		return true
	})
	if fields == nil {
		t.Fatal("no struct in source")
	}
	return fields
}

func TestFieldDirective(t *testing.T) {
	fields := parseStruct(t, `package p

type s struct {
	// cache is worker state.
	//srclint:confined run,flush (free-form prose after the list)
	cache map[int]int
	done  chan struct{} //srclint:owns Close
	plain int
	near  int //srclint:ownsmore Close
}
`)
	if args, ok := FieldDirective(fields[0], "confined"); !ok {
		t.Error("doc-comment directive not found")
	} else if args != "run,flush (free-form prose after the list)" {
		t.Errorf("confined args = %q", args)
	}
	if args, ok := FieldDirective(fields[1], "owns"); !ok || args != "Close" {
		t.Errorf("line-comment directive = %q, %v", args, ok)
	}
	if _, ok := FieldDirective(fields[2], "owns"); ok {
		t.Error("unannotated field matched")
	}
	// The marker must match exactly: //srclint:ownsmore is not //srclint:owns.
	if _, ok := FieldDirective(fields[3], "owns"); ok {
		t.Error("directive prefix matched a longer marker")
	}
}

func TestDirectiveHelper(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", `package p

//srclint:handoff
var flag int
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	gd := f.Decls[0].(*ast.GenDecl)
	if args, ok := Directive(gd.Doc, "handoff"); !ok || args != "" {
		t.Errorf("bare directive = %q, %v", args, ok)
	}
	if _, ok := Directive(gd.Doc, "hand"); ok {
		t.Error("shorter marker matched //srclint:handoff")
	}
	if _, ok := Directive(nil, "handoff"); ok {
		t.Error("nil comment group matched")
	}
}
