package analysis

import "testing"

func TestNormalizePkgPath(t *testing.T) {
	tests := []struct{ in, want string }{
		{"srccache/internal/src", "srccache/internal/src"},
		{"srccache/internal/src [srccache/internal/src.test]", "srccache/internal/src"},
		{"srccache/internal/src.test", "srccache/internal/src"},
		{"srccache/internal/src_test [srccache/internal/src.test]", "srccache/internal/src"},
		{"a/tools", "a/tools"},
	}
	for _, tt := range tests {
		if got := NormalizePkgPath(tt.in); got != tt.want {
			t.Errorf("NormalizePkgPath(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPathMatches(t *testing.T) {
	targets := []string{"internal/src", "internal/raid"}
	tests := []struct {
		path string
		want bool
	}{
		{"srccache/internal/src", true},
		{"internal/src", true},
		{"fixture/internal/src", true},
		{"srccache/internal/src [srccache/internal/src.test]", true},
		{"srccache/internal/srcs", false},
		{"srccache/internal/flash", false},
		{"badinternal/src", false}, // suffix must start at a path boundary
	}
	for _, tt := range tests {
		if got := PathMatches(tt.path, targets); got != tt.want {
			t.Errorf("PathMatches(%q) = %v, want %v", tt.path, got, tt.want)
		}
	}
}
