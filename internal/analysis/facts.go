package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FactsVersion names the serialized facts format. Any change to the fact
// schema, to how facts are computed, or to an analyzer that consumes them
// must bump it: the vet cache and CI's facts cache key on this string, so a
// bump invalidates every cached .vetx file at once.
const FactsVersion = "srclint-facts/v4"

// PackageFacts is one package's exported analysis summary — the modular
// layer that lets contracts declared in one package (internal/netblock's
// stale-epoch error, internal/src's hot path) be enforced against callers
// in another. The driver computes facts for every in-module dependency and
// hands them to analyzers through Pass.DepFacts.
//
// Determinism is part of the contract: Encode output is byte-identical for
// the same package regardless of file parse order or dependency load
// order. Everything is sorted, and positions inside fact strings use
// basename:line (never absolute paths or token.Pos values).
type PackageFacts struct {
	// Path is the package's import path, normalized (test variants fold
	// into the base package).
	Path string
	// Version is FactsVersion; Decode rejects mismatches so stale cached
	// facts can never silently feed a newer analyzer.
	Version string
	// ContractErrors lists the package-level error variables annotated
	// //srclint:contracterr <contract>, sorted by name.
	ContractErrors []ContractError `json:",omitempty"`
	// Funcs holds one fact per function, sorted by Name. The in-memory
	// form carries every function (intra-package analysis needs
	// unexported ones); Encode keeps only the exported entries, which is
	// all a cross-package caller can reach.
	Funcs []FuncFact `json:",omitempty"`
}

// ContractError names one package-level error variable bound to a
// protocol contract, e.g. {Name: "ErrStaleEpoch", Contract: "staleepoch"}.
type ContractError struct {
	Name     string
	Contract string
}

// FuncFact is one function's summary. Name follows the callgraph package's
// convention: "Func" for package functions, "Recv.Method" for methods
// (pointer receivers stripped), "Encl$N" for the N'th literal inside Encl.
type FuncFact struct {
	Name     string
	Exported bool `json:",omitempty"`

	// Surfaces lists contracts whose error this function can return —
	// declared by //srclint:surfaces <contract> or inferred when the body
	// constructs a contract error outside an errors.Is/As guard. Sorted.
	Surfaces []string `json:",omitempty"`
	// Handles lists contracts this function is an annotated handler for
	// (//srclint:handles <contract>). The staleepoch analyzer verifies the
	// annotation against the body. Sorted.
	Handles []string `json:",omitempty"`

	// Dials marks dial/connect-shaped functions (by name, or a direct
	// call to one): the boundedretry analyzer's trigger for retry loops.
	Dials bool `json:",omitempty"`
	// ConsultsBudget marks functions that consult a retry budget or
	// deadline (by name, or a direct call to one): calling one inside a
	// retry loop satisfies the boundedretry contract.
	ConsultsBudget bool `json:",omitempty"`

	// Hotpath marks an //srclint:hotpath root; Coldpath marks a declared
	// slow path (//srclint:coldpath <reason>) that stops hot-path
	// infection at calls to it.
	Hotpath  bool `json:",omitempty"`
	Coldpath bool `json:",omitempty"`
	// HotUnsafe is empty when the function (transitively, through its
	// non-cold callees) is free of hot-path violations; otherwise it
	// describes the first violation, e.g. "slice composite literal
	// (segment.go:144)". A hot caller in another package reports any call
	// to a HotUnsafe function.
	HotUnsafe string `json:",omitempty"`

	// Calls lists cross-package callees that themselves have facts, as
	// "importpath.Name" strings, sorted and deduplicated — the
	// cross-package half of the callgraph.
	Calls []string `json:",omitempty"`

	// MutatesParams, SendsOnParams and ClosesOnParams export the
	// callgraph package's channel/mutation summaries by unified parameter
	// index (receiver first).
	MutatesParams  []int `json:",omitempty"`
	SendsOnParams  []int `json:",omitempty"`
	ClosesOnParams []int `json:",omitempty"`
}

// Func looks a fact up by name, nil if absent.
func (f *PackageFacts) Func(name string) *FuncFact {
	if f == nil {
		return nil
	}
	i := sort.Search(len(f.Funcs), func(i int) bool { return f.Funcs[i].Name >= name })
	if i < len(f.Funcs) && f.Funcs[i].Name == name {
		return &f.Funcs[i]
	}
	return nil
}

// Contract returns the contract bound to the named error variable, or "".
func (f *PackageFacts) Contract(errName string) string {
	if f == nil {
		return ""
	}
	for _, ce := range f.ContractErrors {
		if ce.Name == errName {
			return ce.Contract
		}
	}
	return ""
}

// Normalize sorts every slice so Encode is canonical and Func's binary
// search works. Compute calls it; Decode trusts the wire bytes were
// produced by Encode but normalizes anyway (defense against hand-edits).
func (f *PackageFacts) Normalize() {
	sort.Slice(f.ContractErrors, func(i, j int) bool { return f.ContractErrors[i].Name < f.ContractErrors[j].Name })
	for i := range f.Funcs {
		ff := &f.Funcs[i]
		sort.Strings(ff.Surfaces)
		sort.Strings(ff.Handles)
		sort.Strings(ff.Calls)
		sort.Ints(ff.MutatesParams)
		sort.Ints(ff.SendsOnParams)
		sort.Ints(ff.ClosesOnParams)
	}
	sort.Slice(f.Funcs, func(i, j int) bool { return f.Funcs[i].Name < f.Funcs[j].Name })
}

// Encode serializes the exported view of the facts canonically: fixed field
// order (struct order), every list sorted, exported functions only, one
// trailing newline. Byte-identical across file and package load order.
func (f *PackageFacts) Encode() ([]byte, error) {
	out := PackageFacts{Path: f.Path, Version: f.Version, ContractErrors: f.ContractErrors}
	for _, ff := range f.Funcs {
		if ff.Exported {
			out.Funcs = append(out.Funcs, ff)
		}
	}
	out.Normalize()
	data, err := json.Marshal(&out)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeFacts parses Encode output. Empty input (the placeholder .vetx a
// facts-free tool run writes) and version mismatches return nil facts with
// no error: a consumer falls back to "no facts", never to wrong facts.
func DecodeFacts(data []byte) (*PackageFacts, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var f PackageFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("decoding package facts: %v", err)
	}
	if f.Version != FactsVersion {
		return nil, nil
	}
	f.Normalize()
	return &f, nil
}
