package chandisc_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/chandisc"
)

func TestChanDisc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), chandisc.Analyzer, "cd")
}
