// Package chandisc defines an srclint analyzer enforcing channel
// discipline, the rules that keep the engine's queue hand-off and the
// netblock shutdown protocol panic-free:
//
//  1. No send reachable after a close of the same channel on any CFG path
//     — including sends performed by callees (per the callgraph channel
//     summaries) and sends deferred to function exit.
//  2. A channel field annotated `//srclint:owns <fn>[,<fn>...]` may only
//     be closed from the named functions (matched against the enclosing
//     declaration, so a close inside `once.Do(func(){...})` belongs to
//     the method running it). Closing is an ownership act: exactly one
//     well-known place may do it.
//  3. A function must not both close a channel and receive from it: the
//     closer is the sender side of the protocol. Draining your own close
//     (`close(ch); for range ch`) converts a shutdown signal into data
//     consumption — restructure (collect into a slice, or move the drain
//     to the consumer).
//
// Goroutine launches are deliberately *not* treated as reachability for
// rule 1: `go func(){ ch <- v }(); wg.Wait(); close(ch)` is the standard
// fan-in idiom, and the ordering between the launched sends and the close
// is established by synchronization the analyzer cannot see. Rule 1 is
// about program order within one goroutine, where a send after close is
// a guaranteed panic once that path runs.
package chandisc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"srccache/internal/analysis"
	"srccache/internal/analysis/callgraph"
	"srccache/internal/analysis/cfg"
)

// Analyzer is the channel-discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "chandisc",
	Doc:  "no send after close, close only from the owning function, no receive on a self-closed channel",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.Fset, pass.Files, pass.TypesInfo)
	g.ComputeSummaries()
	owners := ownedFields(pass)
	c := &checker{pass: pass, graph: g, owners: owners}
	for _, n := range g.Nodes {
		c.checkOwnership(n)
		c.checkSendAfterClose(n)
		c.checkCloseAndReceive(n)
	}
	return nil
}

// ownedFields maps channel field objects to their //srclint:owns lists.
func ownedFields(pass *analysis.Pass) map[types.Object][]string {
	owners := make(map[types.Object][]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			st, ok := x.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				args, ok := analysis.FieldDirective(field, "owns")
				if !ok {
					continue
				}
				// The owner list ends at the first whitespace (like
				// //srclint:allow); anything after is free-form prose.
				args, _, _ = strings.Cut(args, " ")
				var names []string
				for _, name := range strings.Split(args, ",") {
					if name = strings.TrimSpace(name); name != "" {
						names = append(names, name)
					}
				}
				for _, id := range field.Names {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						owners[obj] = names
					}
				}
			}
			return true
		})
	}
	return owners
}

type checker struct {
	pass   *analysis.Pass
	graph  *callgraph.Graph
	owners map[types.Object][]string
}

// chanName renders a channel expression for diagnostics.
func chanName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return chanName(e.X) + "." + e.Sel.Name
	}
	return "channel"
}

// closeArg returns the channel expression of a builtin close call, or nil.
func (c *checker) closeArg(call *ast.CallExpr) ast.Expr {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	return call.Args[0]
}

// checkOwnership enforces rule 2 on every close site in n.
func (c *checker) checkOwnership(n *callgraph.Node) {
	decl := n.EnclosingDecl()
	n.Walk(func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		arg := c.closeArg(call)
		if arg == nil {
			return true
		}
		obj := c.graph.ValueObj(arg)
		if obj == nil {
			return true
		}
		names, owned := c.owners[obj]
		if !owned || ownerMatches(decl, names) {
			return true
		}
		c.pass.Reportf(call.Pos(),
			"close(%s) outside its owner %s (//srclint:owns): only the owning function may close this channel",
			chanName(arg), strings.Join(names, ", "))
		return true
	})
}

// ownerMatches reports whether the declaration node matches one of the
// owner names: a bare function/method name or a qualified "Type.method".
func ownerMatches(decl *callgraph.Node, names []string) bool {
	for _, name := range names {
		if decl.Name == name || strings.HasSuffix(decl.Name, "."+name) {
			return true
		}
	}
	return false
}

// checkSendAfterClose enforces rule 1 with a may-dataflow over n's CFG:
// facts are the channel objects closed on some path to the current node.
func (c *checker) checkSendAfterClose(n *callgraph.Node) {
	body := n.Body()
	if body == nil {
		return
	}
	// closesIn collects the channel objects a statement closes, directly
	// or via synchronous callees.
	closesIn := func(x ast.Node, fn func(types.Object)) {
		stmtCalls(x, func(call *ast.CallExpr) {
			if arg := c.closeArg(call); arg != nil {
				if obj := c.graph.ValueObj(arg); obj != nil {
					fn(obj)
				}
				return
			}
			for _, callee := range c.graph.Callees(call) {
				for _, obj := range callee.Summary.ClosesOn {
					fn(obj)
				}
				args := callgraph.CallArgs(c.pass.TypesInfo, call)
				for i, hit := range callee.Summary.ClosesOnParam {
					if hit && i < len(args) {
						if obj := c.graph.ValueObj(args[i]); obj != nil {
							fn(obj)
						}
					}
				}
			}
		})
	}
	p := cfg.Problem{Transfer: func(x ast.Node, facts cfg.Facts) {
		if _, isDefer := x.(*ast.DeferStmt); isDefer {
			return // runs at exit, not here; handled below
		}
		if _, isGo := x.(*ast.GoStmt); isGo {
			return // concurrent; not ordered after this point
		}
		closesIn(x, func(obj types.Object) { facts[obj] = true })
	}}
	g := cfg.New(body)
	ins := cfg.Solve(g, p)

	// sendsIn reports sends a statement performs, directly or via callees.
	sendsIn := func(x ast.Node, fn func(obj types.Object, pos ast.Node, how string)) {
		if s, ok := x.(*ast.SendStmt); ok {
			if obj := c.graph.ValueObj(s.Chan); obj != nil {
				fn(obj, s, "send on "+chanName(s.Chan))
			}
		}
		stmtCalls(x, func(call *ast.CallExpr) {
			for _, callee := range c.graph.Callees(call) {
				for _, obj := range callee.Summary.SendsOn {
					fn(obj, call, callee.Name+" sends on a channel")
				}
				args := callgraph.CallArgs(c.pass.TypesInfo, call)
				for i, hit := range callee.Summary.SendsOnParam {
					if hit && i < len(args) {
						if obj := c.graph.ValueObj(args[i]); obj != nil {
							fn(obj, call, callee.Name+" sends on "+chanName(args[i]))
						}
					}
				}
			}
		})
	}
	cfg.Visit(g, p, ins, func(x ast.Node, before cfg.Facts) {
		switch x.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return // deferred sends checked against exit facts below
		}
		sendsIn(x, func(obj types.Object, at ast.Node, how string) {
			if !before[obj] {
				return
			}
			c.pass.Reportf(at.Pos(),
				"%s is reachable after close on a path through this function: a send on a closed channel panics (//srclint:allow chandisc to override)", how)
		})
	})

	// Deferred sends run at function exit: if the function may have closed
	// the channel by then (on any path), the defer panics when that path
	// ran. Exit facts may be nil when every path panics.
	exit := cfg.ExitFacts(g, ins)
	closedAtExit := func(obj types.Object) bool {
		if exit != nil && exit[obj] {
			return true
		}
		return false
	}
	n.Walk(func(x ast.Node) bool {
		d, ok := x.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for _, callee := range c.graph.Callees(d.Call) {
			for _, obj := range callee.Summary.SendsOn {
				if closedAtExit(obj) {
					c.pass.Reportf(d.Pos(),
						"deferred %s sends on a channel this function closes: the send runs after the close (//srclint:allow chandisc to override)", callee.Name)
				}
			}
			args := callgraph.CallArgs(c.pass.TypesInfo, d.Call)
			for i, hit := range callee.Summary.SendsOnParam {
				if hit && i < len(args) {
					if obj := c.graph.ValueObj(args[i]); obj != nil && closedAtExit(obj) {
						c.pass.Reportf(d.Pos(),
							"deferred send on %s runs after this function closes it (//srclint:allow chandisc to override)", chanName(args[i]))
					}
				}
			}
		}
		return false
	})
}

// checkCloseAndReceive enforces rule 3: one function (node) must not both
// close a channel and receive from it.
func (c *checker) checkCloseAndReceive(n *callgraph.Node) {
	closed := make(map[types.Object]bool)
	n.Walk(func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if arg := c.closeArg(call); arg != nil {
				if obj := c.graph.ValueObj(arg); obj != nil {
					closed[obj] = true
				}
			}
		}
		return true
	})
	if len(closed) == 0 {
		return
	}
	report := func(e ast.Expr, pos ast.Node) {
		obj := c.graph.ValueObj(e)
		if obj == nil || !closed[obj] {
			return
		}
		c.pass.Reportf(pos.Pos(),
			"receive from %s in the same function that closes it: the closer is the sender side — collect results another way or move the drain to the consumer (//srclint:allow chandisc to override)",
			chanName(e))
		delete(closed, obj) // one finding per channel per function
	}
	n.Walk(func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				report(s.X, s)
			}
		case *ast.RangeStmt:
			if s.X == nil {
				return true
			}
			if t := c.pass.TypesInfo.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(s.X, s)
				}
			}
		}
		return true
	})
}

// stmtCalls visits every call expression within one statement/expression
// node, not descending into function literals.
func stmtCalls(x ast.Node, fn func(*ast.CallExpr)) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(y ast.Node) bool {
		if _, ok := y.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := y.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}
