// Package cd exercises the chandisc analyzer: send-after-close on any
// path (including through callees and defers), //srclint:owns ownership,
// and close-then-drain in one function.
package cd

import "sync"

type pool struct {
	done chan struct{} //srclint:owns shutdown (signal channel)
	work chan int      //srclint:owns drain
}

// shutdown owns done: clean.
func (p *pool) shutdown() {
	close(p.done)
}

// hijack closes a channel it does not own.
func (p *pool) hijack() {
	close(p.done) // want `close\(p\.done\) outside its owner shutdown`
}

// drain owns work and closes it inside a literal: the close is attributed
// to the enclosing declaration, so this is clean.
func (p *pool) drain() {
	fn := func() { close(p.work) }
	fn()
}

// sendAfterClose is a guaranteed panic in straight-line code.
func sendAfterClose(ch chan int) {
	close(ch)
	ch <- 1 // want `send on ch is reachable after close`
}

// closeOnOnePath closes on one branch; the send after the join panics
// whenever that branch ran (may-analysis).
func closeOnOnePath(ch chan int, stop bool) {
	if stop {
		close(ch)
	}
	ch <- 2 // want `send on ch is reachable after close`
}

// shutdownChan closes its parameter; the summary carries that to callers.
func shutdownChan(ch chan int) {
	close(ch)
}

// sendAfterCalleeClose closes through a helper, then sends.
func sendAfterCalleeClose(ch chan int) {
	shutdownChan(ch)
	ch <- 3 // want `send on ch is reachable after close`
}

// push sends on its parameter; on its own that is fine.
func push(ch chan int, v int) {
	ch <- v
}

// closeThenPush reaches a send through a callee after closing.
func closeThenPush(ch chan int) {
	close(ch)
	push(ch, 4) // want `push sends on ch is reachable after close`
}

// deferredSend defers a send, then closes: the defer runs at exit, after
// the close on every completing path.
func deferredSend(ch chan int) {
	defer func() { ch <- 5 }() // want `sends on a channel this function closes`
	close(ch)
}

// fanIn is the standard idiom the analyzer must not flag: launched sends
// are ordered before the close by the WaitGroup (go statements are not
// rule-1 reachability), and the drain belongs to the consumer.
func fanIn(n int) <-chan int {
	var wg sync.WaitGroup
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			ch <- v
		}(i)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// drainOwnClose converts the shutdown signal into data consumption: the
// closer is the sender side of the protocol.
func drainOwnClose(ch chan int) int {
	close(ch)
	total := 0
	for v := range ch { // want `receive from ch in the same function that closes it`
		total += v
	}
	return total
}
