package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// fact is the singleton must/may fact used by the tests: calls to gen() add
// it, calls to kill() remove it.
type fact struct{}

var testProblemTransfer = func(n ast.Node, facts Facts) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "gen":
				facts[fact{}] = true
			case "kill":
				delete(facts, fact{})
			}
		}
		return true
	})
}

// atReturns runs the test problem over src (the body of a function with
// int-literal returns) and reports, for each `return N`, whether the fact
// holds immediately before the return.
func atReturns(t *testing.T, src string, must bool) map[string]bool {
	t.Helper()
	g := buildGraph(t, src)
	p := Problem{Transfer: testProblemTransfer, Must: must}
	ins := Solve(g, p)
	out := make(map[string]bool)
	Visit(g, p, ins, func(n ast.Node, before Facts) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return
		}
		lit, ok := ret.Results[0].(*ast.BasicLit)
		if !ok {
			return
		}
		out[lit.Value] = before[fact{}]
	})
	return out
}

func buildGraph(t *testing.T, body string) *Graph {
	t.Helper()
	file := "package p\nfunc gen()\nfunc kill()\nfunc cond() bool\nfunc f() int {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return New(fd.Body)
		}
	}
	t.Fatal("no func f")
	return nil
}

func expect(t *testing.T, got map[string]bool, want map[string]bool) {
	t.Helper()
	for ret, w := range want {
		g, ok := got[ret]
		if !ok {
			t.Errorf("return %s: not visited (unreachable?)", ret)
			continue
		}
		if g != w {
			t.Errorf("return %s: fact = %v, want %v", ret, g, w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("visited returns %v, want %v", got, want)
	}
}

func TestIfElseBothGen(t *testing.T) {
	got := atReturns(t, `
	if cond() {
		gen()
	} else {
		gen()
	}
	return 1`, true)
	expect(t, got, map[string]bool{"1": true})
}

func TestIfWithoutElse(t *testing.T) {
	src := `
	if cond() {
		gen()
	}
	return 1`
	expect(t, atReturns(t, src, true), map[string]bool{"1": false})
	expect(t, atReturns(t, src, false), map[string]bool{"1": true})
}

func TestEarlyReturnInBranch(t *testing.T) {
	got := atReturns(t, `
	if cond() {
		return 1
	}
	gen()
	return 2`, true)
	expect(t, got, map[string]bool{"1": false, "2": true})
}

func TestForZeroIterations(t *testing.T) {
	// A for loop may run zero times, so a gen inside the body is not a
	// must-fact after it; a gen before the loop survives it.
	expect(t, atReturns(t, `
	for i := 0; i < 3; i++ {
		gen()
	}
	return 1`, true), map[string]bool{"1": false})
	expect(t, atReturns(t, `
	gen()
	for i := 0; i < 3; i++ {
	}
	return 1`, true), map[string]bool{"1": true})
}

func TestForKillInBody(t *testing.T) {
	got := atReturns(t, `
	gen()
	for i := 0; i < 3; i++ {
		kill()
	}
	return 1`, true)
	expect(t, got, map[string]bool{"1": false})
}

func TestInfiniteForWithBreak(t *testing.T) {
	got := atReturns(t, `
	for {
		if cond() {
			gen()
			break
		}
	}
	return 1`, true)
	expect(t, got, map[string]bool{"1": true})
}

func TestRangeZeroIterations(t *testing.T) {
	got := atReturns(t, `
	xs := []int{1}
	for range xs {
		gen()
	}
	return 1`, true)
	expect(t, got, map[string]bool{"1": false})
}

func TestSwitchBypassWithoutDefault(t *testing.T) {
	src := `
	switch {
	case cond():
		gen()
	case !cond():
		gen()
	}
	return 1`
	expect(t, atReturns(t, src, true), map[string]bool{"1": false})

	withDefault := `
	switch {
	case cond():
		gen()
	default:
		gen()
	}
	return 1`
	expect(t, atReturns(t, withDefault, true), map[string]bool{"1": true})
}

func TestSwitchFallthrough(t *testing.T) {
	// The gen in the first case reaches the second case's return only via
	// fallthrough — a may-fact there, not a must-fact (the second case is
	// also entered directly). The return after the switch is reached only
	// through the no-case-matched bypass, which never gens.
	src := `
	switch 1 {
	case 1:
		gen()
		fallthrough
	case 2:
		return 1
	}
	return 2`
	expect(t, atReturns(t, src, false), map[string]bool{"1": true, "2": false})
	expect(t, atReturns(t, src, true), map[string]bool{"1": false, "2": false})
}

func TestTypeSwitch(t *testing.T) {
	got := atReturns(t, `
	var v any = 1
	switch v.(type) {
	case int:
		gen()
	default:
		gen()
	}
	return 1`, true)
	expect(t, got, map[string]bool{"1": true})
}

func TestSelectAllCasesGen(t *testing.T) {
	// Select has no bypass edge: one of the cases always runs.
	got := atReturns(t, `
	ch := make(chan int)
	select {
	case <-ch:
		gen()
	default:
		gen()
	}
	return 1`, true)
	expect(t, got, map[string]bool{"1": true})
}

func TestLabeledBreakSkipsGen(t *testing.T) {
	got := atReturns(t, `
outer:
	for {
		for {
			if cond() {
				break outer
			}
			gen()
			break
		}
		gen()
		return 1
	}
	return 2`, true)
	expect(t, got, map[string]bool{"1": true, "2": false})
}

func TestLabeledContinue(t *testing.T) {
	got := atReturns(t, `
outer:
	for i := 0; i < 2; i++ {
		for {
			continue outer
		}
	}
	gen()
	return 1`, true)
	expect(t, got, map[string]bool{"1": true})
}

func TestGotoBackward(t *testing.T) {
	got := atReturns(t, `
	i := 0
again:
	gen()
	i++
	if i < 3 {
		goto again
	}
	return 1`, true)
	expect(t, got, map[string]bool{"1": true})
}

func TestPanicPathDoesNotReachReturn(t *testing.T) {
	// The panicking branch never reaches the return, so the missing gen on
	// it does not break the must-fact.
	got := atReturns(t, `
	if cond() {
		panic("boom")
	}
	gen()
	return 1`, true)
	expect(t, got, map[string]bool{"1": true})
}

func TestUnreachableAfterReturnNotVisited(t *testing.T) {
	g := buildGraph(t, `
	gen()
	return 1
	return 2`)
	p := Problem{Transfer: testProblemTransfer, Must: true}
	ins := Solve(g, p)
	visited := map[string]bool{}
	Visit(g, p, ins, func(n ast.Node, before Facts) {
		if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			if lit, ok := ret.Results[0].(*ast.BasicLit); ok {
				visited[lit.Value] = true
			}
		}
	})
	if !visited["1"] || visited["2"] {
		t.Errorf("visited = %v, want only return 1", visited)
	}
}

func TestExitFacts(t *testing.T) {
	g := buildGraph(t, `
	if cond() {
		gen()
		return 1
	}
	return 2`)
	p := Problem{Transfer: testProblemTransfer, Must: false}
	ins := Solve(g, p)
	if f := ExitFacts(g, ins); !f[fact{}] {
		t.Errorf("exit facts = %v, want may-fact present", f)
	}
}

func TestEntryFactsSeed(t *testing.T) {
	g := buildGraph(t, `return 1`)
	p := Problem{
		Transfer: testProblemTransfer,
		Must:     true,
		Entry:    Facts{fact{}: true},
	}
	ins := Solve(g, p)
	seen := false
	Visit(g, p, ins, func(n ast.Node, before Facts) {
		if _, ok := n.(*ast.ReturnStmt); ok {
			seen = before[fact{}]
		}
	})
	if !seen {
		t.Error("entry fact did not reach the return")
	}
}
