// Package cfg builds per-function control-flow graphs from Go ASTs and
// solves forward dataflow problems over them, dependency-free like the rest
// of internal/analysis.
//
// The graph is deliberately simple: a Block is a run of statements (and
// condition expressions) with no internal branching, and edges follow the
// statement-level control flow of if/for/range/switch/select, return,
// break/continue (labeled or not), goto, and fallthrough. Two constructs
// are handled conservatively:
//
//   - A statement that certainly panics or exits (a call to the panic
//     builtin or os.Exit as an expression statement) terminates its block
//     with no successors. Panic paths therefore never reach Exit, so a
//     must-hold-at-return analysis does not demand its fact on them.
//   - Expressions are not decomposed: short-circuit evaluation, function
//     literals, and panics hidden inside calls are invisible. Analyzers
//     built on this package must treat whole statements as atomic.
//
// On top of the graph, Solve runs a classic iterative forward dataflow
// analysis: facts are gen'd and killed by a per-node Transfer function and
// merged at join points either by intersection (must facts: a fact holds
// only if it holds on every incoming path) or by union (may facts: it holds
// if it holds on some path). Visit then replays the solution so an analyzer
// can observe the fact set in force immediately before each node.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: Nodes execute in order, then control moves to
// one of Succs. A block with no successors ends the function (return, panic,
// or the synthetic Exit).
type Block struct {
	// Index is the block's position in Graph.Blocks (entry is 0).
	Index int
	// Nodes holds the statements and condition expressions of the block in
	// execution order. Condition expressions (if/for conditions, switch
	// tags, range operands) appear as bare ast.Expr nodes.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block, Entry first. Unreachable blocks (code after
	// a terminating statement) are present but never reached from Entry.
	Blocks []*Block
	// Entry is executed first; Exit is the synthetic block every return
	// (and the fall-off-the-end path) leads to. Exit has no nodes.
	Entry, Exit *Block
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: make(map[string]*labelScope)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, g.Exit) // fall off the end
	}
	for _, p := range b.gotos {
		if target, ok := b.labelBlocks[p.label]; ok {
			b.edge(p.from, target)
		} else {
			// A goto to a label the builder never saw (malformed input):
			// conservatively continue at Exit.
			b.edge(p.from, g.Exit)
		}
	}
	return g
}

// labelScope remembers the jump targets a labeled loop/switch/select makes
// available to labeled break and continue.
type labelScope struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select labels
}

type gotoPatch struct {
	from  *Block
	label string
}

type builder struct {
	g *Graph
	// cur is the block under construction; nil after a terminating
	// statement (subsequent statements are unreachable and get a fresh,
	// predecessor-less block).
	cur *Block

	// breakTo/continueTo are the innermost unlabeled jump targets.
	breakTo    *Block
	continueTo *Block
	// labels maps an active label to its loop's jump targets.
	labels map[string]*labelScope
	// pendingLabel is the label attached to the next loop/switch/select.
	pendingLabel string
	// labelBlocks maps every label to the block its statement starts, for
	// goto resolution; gotos collects forward references to patch at the
	// end.
	labelBlocks map[string]*Block
	gotos       []gotoPatch
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// current returns the block under construction, starting a fresh
// unreachable one if the previous statement terminated control flow.
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) { b.current().Nodes = append(b.current().Nodes, n) }

// stmt translates one statement into blocks and edges.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.current()
		join := b.newBlock()
		// Then branch.
		thenBlk := b.newBlock()
		b.edge(head, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		// Else branch (or fall through past the if).
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(head, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.current(), head)
		exit := b.newBlock()
		body := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, exit)
		}
		b.edge(head, body)

		post := head
		if s.Post != nil {
			post = b.newBlock()
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.loopBody(s.Body, body, exit, post)
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		head.Nodes = append(head.Nodes, s.X)
		b.edge(b.current(), head)
		exit := b.newBlock()
		body := b.newBlock()
		b.edge(head, exit) // zero iterations
		b.edge(head, body)
		b.loopBody(s.Body, body, exit, head)
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.stmt(s.Assign)
		b.switchBody(s.Body)

	case *ast.SelectStmt:
		head := b.current()
		join := b.newBlock()
		saveBreak := b.breakTo
		b.breakTo = join
		b.enterLabel(join, nil)
		hasDefault := false
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if comm.Comm == nil {
				hasDefault = true
			} else {
				b.stmt(comm.Comm)
			}
			for _, st := range comm.Body {
				b.stmt(st)
			}
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		}
		// A select with no cases at all blocks forever.
		if len(s.Body.List) == 0 && !hasDefault {
			// head keeps no edge to join: nothing follows.
		}
		b.breakTo = saveBreak
		b.cur = join

	case *ast.LabeledStmt:
		// Record the label both for goto and, when the labeled statement is
		// a loop/switch/select, for labeled break/continue.
		start := b.current()
		if b.labelBlocks == nil {
			b.labelBlocks = make(map[string]*Block)
		}
		// The labeled statement begins in a fresh block so a goto can land
		// exactly at it.
		target := b.newBlock()
		b.edge(start, target)
		b.cur = target
		b.labelBlocks[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		cur := b.current()
		switch s.Tok {
		case token.BREAK:
			to := b.breakTo
			if s.Label != nil {
				if ls := b.labels[s.Label.Name]; ls != nil {
					to = ls.breakTo
				}
			}
			if to != nil {
				b.edge(cur, to)
			} else {
				b.edge(cur, b.g.Exit)
			}
			b.cur = nil
		case token.CONTINUE:
			to := b.continueTo
			if s.Label != nil {
				if ls := b.labels[s.Label.Name]; ls != nil && ls.continueTo != nil {
					to = ls.continueTo
				}
			}
			if to != nil {
				b.edge(cur, to)
			} else {
				b.edge(cur, b.g.Exit)
			}
			b.cur = nil
		case token.GOTO:
			b.gotos = append(b.gotos, gotoPatch{from: cur, label: s.Label.Name})
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchBody, which wires the edge to the next case.
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.current(), b.g.Exit)
		b.cur = nil

	default:
		// Straight-line statements, including defer/go (their calls run
		// later or elsewhere; analyzers see the statement node itself) and
		// declarations.
		b.add(s)
		if terminates(s) {
			b.cur = nil
		}
	}
}

// loopBody builds a loop body with break/continue wired to exit/cont, honoring
// a pending label.
func (b *builder) loopBody(body *ast.BlockStmt, start, exit, cont *Block) {
	saveBreak, saveCont := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = exit, cont
	b.enterLabel(exit, cont)
	b.cur = start
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.breakTo, b.continueTo = saveBreak, saveCont
}

// enterLabel binds the pending label (if any) to the given jump targets.
func (b *builder) enterLabel(breakTo, continueTo *Block) {
	if b.pendingLabel == "" {
		return
	}
	b.labels[b.pendingLabel] = &labelScope{breakTo: breakTo, continueTo: continueTo}
	b.pendingLabel = ""
}

// switchBody wires the case clauses of a (type) switch whose init/tag nodes
// are already in the current block.
func (b *builder) switchBody(body *ast.BlockStmt) {
	head := b.current()
	join := b.newBlock()
	saveBreak := b.breakTo
	b.breakTo = join
	b.enterLabel(join, nil)

	clauses := body.List
	caseBlocks := make([]*Block, len(clauses))
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, caseBlocks[i])
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fellThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(clauses) {
					b.edge(b.current(), caseBlocks[i+1])
				}
				fellThrough = true
				b.cur = nil
				continue
			}
			b.stmt(st)
		}
		if !fellThrough && b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	if !hasDefault {
		b.edge(head, join) // no case matched
	}
	b.breakTo = saveBreak
	b.cur = join
}

// terminates reports whether a straight-line statement certainly stops
// control flow: a bare call to the panic builtin or to os.Exit. Calls that
// merely may panic are not terminators — that is the conservative choice
// for must-analyses, which otherwise would accept a missing fact on any
// path containing any call.
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}
