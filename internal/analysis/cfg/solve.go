package cfg

import "go/ast"

// Facts is a set of dataflow facts. Keys are analyzer-chosen comparable
// values (a types.Object, a gen-site node, a sentinel struct).
type Facts map[any]bool

// clone copies a fact set.
func (f Facts) clone() Facts {
	out := make(Facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// A Problem is one forward gen/kill dataflow analysis.
type Problem struct {
	// Transfer applies one node's gen and kill effects to facts in place.
	// It must be deterministic and depend only on the node and the set.
	Transfer func(n ast.Node, facts Facts)
	// Must selects the merge at join points: true intersects (a fact
	// survives only if it holds on every incoming path — "definitely
	// drained"), false unions (it survives if it holds on any path —
	// "possibly locked").
	Must bool
	// Entry seeds the fact set at function entry (nil for empty).
	Entry Facts
}

// Solve iterates the problem to a fixpoint and returns the facts holding at
// the entry of each reachable block. Unreachable blocks are absent from the
// result; analyzers should not report into them.
func Solve(g *Graph, p Problem) map[*Block]Facts {
	ins := make(map[*Block]Facts)
	entry := p.Entry
	if entry == nil {
		entry = Facts{}
	}
	ins[g.Entry] = entry.clone()

	worklist := []*Block{g.Entry}
	inList := map[*Block]bool{g.Entry: true}
	for len(worklist) > 0 {
		blk := worklist[0]
		worklist = worklist[1:]
		inList[blk] = false

		out := ins[blk].clone()
		for _, n := range blk.Nodes {
			p.Transfer(n, out)
		}
		for _, succ := range blk.Succs {
			if !merge(ins, succ, out, p.Must) {
				continue
			}
			if !inList[succ] {
				inList[succ] = true
				worklist = append(worklist, succ)
			}
		}
	}
	return ins
}

// merge folds out into succ's entry facts and reports whether they changed.
func merge(ins map[*Block]Facts, succ *Block, out Facts, must bool) bool {
	cur, seen := ins[succ]
	if !seen {
		ins[succ] = out.clone()
		return true
	}
	changed := false
	if must {
		for k := range cur {
			if !out[k] {
				delete(cur, k)
				changed = true
			}
		}
	} else {
		for k := range out {
			if !cur[k] {
				cur[k] = true
				changed = true
			}
		}
	}
	return changed
}

// Visit replays the solved analysis over every reachable block, calling fn
// with the facts in force immediately before each node (before that node's
// own Transfer applies). Iteration order is deterministic: blocks by index,
// nodes in execution order.
func Visit(g *Graph, p Problem, ins map[*Block]Facts, fn func(n ast.Node, before Facts)) {
	for _, blk := range g.Blocks {
		in, reachable := ins[blk]
		if !reachable {
			continue
		}
		facts := in.clone()
		for _, n := range blk.Nodes {
			fn(n, facts)
			p.Transfer(n, facts)
		}
	}
}

// ExitFacts returns the facts holding at the synthetic Exit block, or nil
// when Exit is unreachable (every path panics or loops forever).
func ExitFacts(g *Graph, ins map[*Block]Facts) Facts {
	return ins[g.Exit]
}
