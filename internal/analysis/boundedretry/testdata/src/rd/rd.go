// Package rd exports a redialer whose dial nature is visible only through
// its Dials fact (the name says nothing about dialing).
package rd

// Acquire obtains a connection, redialing under the covers; its Dials
// fact comes from the direct dialUp call.
func Acquire() error { return dialUp() }

func dialUp() error { return nil }
