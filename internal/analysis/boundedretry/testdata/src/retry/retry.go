// Package retry exercises the boundedretry analyzer.
package retry

import "rd"

type conn struct{ ok bool }

func dialPeer() (*conn, error) { return &conn{ok: true}, nil }

// unbounded spins forever against a dead peer.
func unbounded() *conn {
	for { // want `retry loop calls dialPeer but a back edge consults no budget`
		c, err := dialPeer()
		if err == nil {
			return c
		}
	}
}

// bounded consults an attempt limit on every back edge.
func bounded(limit int) *conn {
	for attempt := 0; ; attempt++ {
		c, err := dialPeer()
		if err == nil {
			return c
		}
		if attempt >= limit {
			return nil
		}
	}
}

// condBounded carries the bound in the loop condition itself.
func condBounded(limit int) *conn {
	for attempt := 0; attempt < limit; attempt++ {
		if c, err := dialPeer(); err == nil {
			return c
		}
	}
	return nil
}

// deadlined consults a deadline helper instead of a counter.
func deadlined() *conn {
	for {
		c, err := dialPeer()
		if err == nil {
			return c
		}
		if overDeadline() {
			return nil
		}
	}
}

func overDeadline() bool { return false }

// rangeScan is out of scope: ranging over candidates is bounded by the
// collection.
func rangeScan(n int) *conn {
	addrs := make([]string, n)
	for range addrs {
		if c, err := dialPeer(); err == nil {
			return c
		}
	}
	return nil
}

// selectBacked blocks on a cancellation-aware select each back edge.
func selectBacked(stop chan struct{}) *conn {
	for {
		c, err := dialPeer()
		if err == nil {
			return c
		}
		select {
		case <-stop:
			return nil
		case <-tick():
		}
	}
}

func tick() chan struct{} { return nil }

// mixed consults the bound on one path but a continue skips it: the
// analyzer demands the consult on every back edge.
func mixed(limit int, flaky bool) *conn {
	for attempt := 0; ; attempt++ { // want `retry loop calls dialPeer but a back edge consults no budget`
		c, err := dialPeer()
		if err == nil {
			return c
		}
		if flaky {
			continue
		}
		if attempt >= limit {
			return nil
		}
	}
}

// factTriggered is flagged only because rd.Acquire's facts mark it as a
// dialer; nothing in this package says so.
func factTriggered() {
	for { // want `retry loop calls rd.Acquire but a back edge consults no budget`
		if rd.Acquire() == nil {
			return
		}
	}
}
