// Package boundedretry enforces DESIGN.md §8 rule 12: a retry/reconnect
// loop must consult a budget, limit, or deadline on every back edge — a
// loop that redials a dead peer forever turns one crashed node into a hung
// caller.
//
// A candidate loop is a non-range `for` statement whose body calls a
// dial-shaped function: one whose name starts with dial/connect/redial/
// reconnect/accept, or whose package facts carry Dials (a function that
// directly wraps a dialer, resolved cross-package through the modular
// facts layer). Loops whose condition already contains an ordered
// comparison (`for i := 0; i < n; i++`) are bounded by construction.
//
// For the rest, a must-dataflow analysis over the loop body's CFG starts
// every iteration with no facts and marks "consulted" at ordered
// comparisons, calls to budget/deadline-shaped functions (by name or by
// ConsultsBudget fact), channel receives, and select statements. Every
// back edge — a fall-off-the-end block or a `continue` — must carry the
// consulted fact; `break` and `return` edges leave the loop and are
// exempt.
package boundedretry

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"srccache/internal/analysis"
	"srccache/internal/analysis/cfg"
	"srccache/internal/analysis/modfacts"
)

// Analyzer is the boundedretry check.
var Analyzer = &analysis.Analyzer{
	Name: "boundedretry",
	Doc:  "retry/reconnect loops must consult a budget, limit, or deadline on every back edge",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			// Tests may spin on a local fixture; the contract binds
			// production reconnect paths.
			continue
		}
		ast.Inspect(f, func(x ast.Node) bool {
			if loop, ok := x.(*ast.ForStmt); ok {
				c.checkLoop(loop)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	own  *analysis.PackageFacts // built on first dial-candidate loop
}

// ownFacts lazily computes this package's facts; most packages never have
// a candidate loop and skip the cost.
func (c *checker) ownFacts() *analysis.PackageFacts {
	if c.own == nil {
		if c.pass.OwnFacts != nil {
			c.own = c.pass.OwnFacts
		} else {
			c.own = modfacts.Compute(c.pass.Fset, c.pass.Files, c.pass.TypesInfo,
				c.pass.Pkg, c.pass.Dirs, c.pass.ImportedFacts)
		}
	}
	return c.own
}

func (c *checker) checkLoop(loop *ast.ForStmt) {
	if loop.Cond != nil && containsOrderedCmp(loop.Cond) {
		return // bounded by the loop condition itself
	}
	dial, name := c.findDialCall(loop.Body)
	if dial == nil {
		return
	}
	g := cfg.New(loop.Body)
	ins := cfg.Solve(g, cfg.Problem{Must: true, Transfer: c.consultTransfer})
	for _, blk := range g.Blocks {
		in, reachable := ins[blk]
		if !reachable || !edgesTo(blk, g.Exit) || !backEdge(blk) {
			continue
		}
		facts := cfg.Facts{}
		for k := range in {
			facts[k] = true
		}
		for _, n := range blk.Nodes {
			c.consultTransfer(n, facts)
		}
		if !facts[consultedKey{}] {
			c.pass.Reportf(loop.For,
				"retry loop calls %s but a back edge consults no budget, limit, or deadline — bound the retries or block on a cancellation channel",
				name)
			return // one diagnostic per loop
		}
	}
}

// findDialCall returns the first dial-shaped call in the loop body
// (nested function literals excluded — their bodies run on their own
// schedule) along with a display name for the diagnostic.
func (c *checker) findDialCall(body *ast.BlockStmt) (found *ast.CallExpr, name string) {
	ast.Inspect(body, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if n, ok := c.dialish(call); ok {
			found, name = call, n
			return false
		}
		return true
	})
	return found, name
}

// dialish classifies a call as dial-shaped: by callee name, or by the
// callee's Dials fact (own package or imported).
func (c *checker) dialish(call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		// Function-value call: fall back to the syntactic name.
		if n := syntacticName(call); n != "" && dialishName(n) {
			return n, true
		}
		return "", false
	}
	if dialishName(fn.Name()) {
		return displayName(c.pass.Pkg, fn), true
	}
	if ff := c.factOf(fn); ff != nil && ff.Dials {
		return displayName(c.pass.Pkg, fn), true
	}
	return "", false
}

// budgetish classifies a call as consulting a budget or deadline.
func (c *checker) budgetish(call *ast.CallExpr) bool {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		n := strings.ToLower(syntacticName(call))
		return strings.Contains(n, "budget") || strings.Contains(n, "deadline")
	}
	n := strings.ToLower(fn.Name())
	if strings.Contains(n, "budget") || strings.Contains(n, "deadline") {
		return true
	}
	ff := c.factOf(fn)
	return ff != nil && ff.ConsultsBudget
}

func (c *checker) factOf(fn *types.Func) *analysis.FuncFact {
	if fn.Pkg() == c.pass.Pkg {
		return c.ownFacts().Func(modfacts.FuncName(fn))
	}
	if fn.Pkg() == nil {
		return nil
	}
	return c.pass.ImportedFacts(analysis.NormalizePkgPath(fn.Pkg().Path())).Func(modfacts.FuncName(fn))
}

func displayName(own *types.Package, fn *types.Func) string {
	name := modfacts.FuncName(fn)
	if fn.Pkg() != nil && fn.Pkg() != own {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func syntacticName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func dialishName(name string) bool {
	l := strings.ToLower(name)
	for _, p := range []string{"dial", "connect", "redial", "reconnect", "accept"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

// ---- the must-dataflow problem ------------------------------------------

// consultedKey is the single dataflow fact: "a budget, limit, or deadline
// was consulted since this iteration began". The problem's Entry set is
// empty: a consultation before the loop must not leak into iterations.
type consultedKey struct{}

func (c *checker) consultTransfer(n ast.Node, facts cfg.Facts) {
	if consults(c, n) {
		facts[consultedKey{}] = true
	}
}

// consults reports whether a CFG node contains a budget consultation:
// an ordered comparison, a budget/deadline call, or a channel receive
// (blocking on a ticker/cancellation channel paces the loop and observes
// shutdown). Nested function literals do not count — they run elsewhere.
func consults(c *checker, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if isOrderedOp(x.Op) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.CallExpr:
			if c.budgetish(x) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func containsOrderedCmp(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if b, ok := x.(*ast.BinaryExpr); ok && isOrderedOp(b.Op) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func isOrderedOp(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func edgesTo(blk, exit *cfg.Block) bool {
	for _, s := range blk.Succs {
		if s == exit {
			return true
		}
	}
	return false
}

// backEdge classifies an Exit-predecessor of a loop-body CFG: the body is
// built standalone, so break/continue/return all edge to Exit, and the
// block's final node tells them apart. Fall-off-the-end (no trailing
// branch) and `continue` re-enter the loop; `break`, `goto` and `return`
// leave it.
func backEdge(blk *cfg.Block) bool {
	if len(blk.Nodes) == 0 {
		return true // empty join block falling off the end
	}
	switch last := blk.Nodes[len(blk.Nodes)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE
	}
	return true
}
