package boundedretry_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/boundedretry"
)

func TestBoundedRetry(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), boundedretry.Analyzer, "retry")
}
