// Package f exercises the flushepoch analyzer: every //srclint:contract
// flush function must reach a drain/flush call on each path to a success
// return.
package f

import (
	"errors"
	"fmt"
)

var ErrNoSpace = errors.New("no space")

type cache struct {
	dirty int
}

func (c *cache) drainDirty() error { return nil }
func (c *cache) flushAll() error   { return nil }
func (c *cache) reuseGroup() error { return nil }
func cond() bool                   { return false }

// goodGC drains before every success return; its error returns are all
// exempt forms (guarded local, package sentinel, constructed error).
//
//srclint:contract flush
func (c *cache) goodGC() error {
	if err := c.reuseGroup(); err != nil {
		return err
	}
	if c.dirty < 0 {
		return ErrNoSpace
	}
	if cond() {
		return fmt.Errorf("gc: %d dirty", c.dirty)
	}
	err := c.drainDirty()
	return err
}

// tailFlush satisfies the contract in the return expression itself.
//
//srclint:contract flush
func (c *cache) tailFlush() error {
	c.dirty = 0
	return c.flushAll()
}

// viaHelper calls an annotated same-package helper, which composes.
//
//srclint:contract flush
func (c *cache) viaHelper() error {
	if cond() {
		return errors.New("busy")
	}
	return c.tailFlush()
}

// badGC is the PR 3 bug shape: the fast path reuses a group (destroying the
// old durable record) and returns success without draining the replacement
// copies into the same flush epoch.
//
//srclint:contract flush
func (c *cache) badGC() error {
	if err := c.reuseGroup(); err != nil {
		return err
	}
	if cond() {
		return nil // want `return without drain/flush in //srclint:contract flush function badGC`
	}
	return c.drainDirty()
}

// loopDrain only drains inside a loop that may run zero times.
//
//srclint:contract flush
func (c *cache) loopDrain(n int) error {
	for i := 0; i < n; i++ {
		if err := c.drainDirty(); err != nil {
			return err
		}
	}
	return nil // want `return without drain/flush in //srclint:contract flush function loopDrain`
}

// unguardedErr returns a local error that was never compared against nil, so
// it may be nil — a success return without a drain.
//
//srclint:contract flush
func (c *cache) unguardedErr() error {
	err := c.reuseGroup()
	return err // want `return without drain/flush in //srclint:contract flush function unguardedErr`
}

// allowed documents a deliberate exception: the suppression keeps the
// finding out of the report and the directive is marked used.
//
//srclint:contract flush
func (c *cache) allowed() error {
	if cond() {
		//srclint:allow flushepoch probe path never destroys durable records
		return nil
	}
	return c.drainDirty()
}

// noResult has no error result: every path, including falling off the end,
// must drain.
//
//srclint:contract flush
func (c *cache) noResult() {
	if cond() {
		return // want `return without drain/flush in //srclint:contract flush function noResult`
	}
	c.dirty = 0
} // want `control falls off the end of //srclint:contract flush function noResult`

// noResultOK drains on both path shapes.
//
//srclint:contract flush
func (c *cache) noResultOK() {
	if cond() {
		_ = c.drainDirty()
		return
	}
	_ = c.flushAll()
}

// panicPath panics instead of returning on the odd branch; panic paths owe
// nothing to the flush epoch.
//
//srclint:contract flush
func (c *cache) panicPath() error {
	if cond() {
		panic("corrupt summary")
	}
	return c.flushAll()
}

// notAnnotated has no contract, so nothing is checked.
func (c *cache) notAnnotated() error {
	return nil
}
