package flushepoch_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/flushepoch"
)

func TestFlushEpoch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), flushepoch.Analyzer, "f")
}
