// Package flushepoch enforces the flush-epoch contract (DESIGN.md §8/§9)
// statically: a function annotated
//
//	//srclint:contract flush
//
// in its doc comment must reach a recognized drain/flush call on every
// control-flow path to a return that can report success. This is the static
// form of the three durability bugs PR 3's chaos harness found dynamically —
// a code path that commits the destruction of an old durable record (a
// reclaimed group reused, a rebuilt summary holding holes) and returns
// without draining the replacement copies into the same flush epoch.
//
// Recognized drain/flush calls are, by name: any function or method whose
// name starts with "drain" or "flush" (case-insensitive, so drainDirty,
// flushSSDs, Flush and Drain all count) or is "Sync"; plus any call to a
// same-package function that itself carries the //srclint:contract flush
// annotation, so the contract composes across helpers.
//
// Error-propagation returns are exempt: a return whose trailing error
// operand is definitely non-nil — an error constructed by fmt.Errorf or
// errors.New/Join, a package-level error variable, or a local guarded by an
// enclosing `if err != nil` (or the else branch of `if err == nil`) — is a
// failure path, and failure paths owe nothing to the flush epoch. Every
// other return (a literal nil error, an unguarded local, a naked return, or
// any return of a function without a trailing error result) must carry the
// must-fact "a drain/flush has executed on every path here".
package flushepoch

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"srccache/internal/analysis"
	"srccache/internal/analysis/cfg"
)

// Analyzer implements the flushepoch check.
var Analyzer = &analysis.Analyzer{
	Name: "flushepoch",
	Doc:  "//srclint:contract flush functions must drain/flush on every path to a success return",
	Run:  run,
}

// contractPrefix marks a function bound by the flush-epoch contract.
const contractPrefix = "//srclint:contract"

// drained is the singleton must-fact: a recognized drain/flush call has
// executed on every path to this point.
type drained struct{}

func run(pass *analysis.Pass) error {
	// First collect the package's annotated functions, so that calling one
	// satisfies the contract in another.
	annotated := make(map[types.Object]bool)
	var funcs []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasContract(fd, "flush") {
				funcs = append(funcs, fd)
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					annotated[obj] = true
				}
			}
		}
	}
	for _, fd := range funcs {
		checkFunc(pass, fd, annotated)
	}
	return nil
}

// hasContract reports whether the function's doc comment carries
// //srclint:contract <name>.
func hasContract(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, contractPrefix)
		if !ok {
			continue
		}
		if fields := strings.Fields(rest); len(fields) > 0 && fields[0] == name {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, annotated map[types.Object]bool) {
	g := cfg.New(fd.Body)
	problem := cfg.Problem{
		Must: true,
		Transfer: func(n ast.Node, facts cfg.Facts) {
			if containsDrain(pass, n, annotated) {
				facts[drained{}] = true
			}
		},
	}
	ins := cfg.Solve(g, problem)

	parents := parentMap(fd.Body)
	errResult := trailingErrorResult(pass, fd)

	cfg.Visit(g, problem, ins, func(n ast.Node, before cfg.Facts) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		// The return's own expressions run before the function returns: a
		// tail call like `return c.Flush(at)` satisfies the contract.
		if before[drained{}] || containsDrain(pass, ret, annotated) {
			return
		}
		if errResult && exemptErrorReturn(pass, ret, parents) {
			return
		}
		pass.Reportf(ret.Pos(),
			"return without drain/flush in //srclint:contract flush function %s; destroyed durable records and their replacements must commit in the same flush epoch (//srclint:allow flushepoch to override)",
			fd.Name.Name)
	})

	// A function without results can also fall off the end.
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		if exit := cfg.ExitFacts(g, ins); exit != nil && !exit[drained{}] {
			if fellOffEnd(g, ins) {
				pass.Reportf(fd.Body.Rbrace,
					"control falls off the end of //srclint:contract flush function %s without a drain/flush call (//srclint:allow flushepoch to override)",
					fd.Name.Name)
			}
		}
	}
}

// fellOffEnd reports whether Exit has a reachable predecessor that is not a
// return statement (the implicit return at the closing brace).
func fellOffEnd(g *cfg.Graph, ins map[*cfg.Block]cfg.Facts) bool {
	for _, blk := range g.Blocks {
		if _, reachable := ins[blk]; !reachable {
			continue
		}
		for _, s := range blk.Succs {
			if s != g.Exit {
				continue
			}
			if len(blk.Nodes) == 0 {
				return true
			}
			last := blk.Nodes[len(blk.Nodes)-1]
			switch last.(type) {
			case *ast.ReturnStmt:
			case *ast.BranchStmt:
				// break/continue resolved to Exit only in malformed code.
			default:
				return true
			}
		}
	}
	return false
}

// containsDrain reports whether a recognized drain/flush call occurs
// anywhere inside n (excluding nested function literals, whose bodies run
// at another time).
func containsDrain(pass *analysis.Pass, n ast.Node, annotated map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
			if drainName(fn.Name()) || annotated[fn] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// drainName reports whether a callee name denotes a drain/flush operation.
func drainName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "drain") ||
		strings.HasPrefix(lower, "flush") ||
		name == "Sync"
}

// trailingErrorResult reports whether the function's last result is of type
// error.
func trailingErrorResult(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	sig, ok := pass.TypesInfo.Defs[fd.Name].Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// exemptErrorReturn reports whether ret is an error-propagation return: its
// trailing operand is definitely non-nil, so the function is reporting
// failure and the flush-epoch obligation does not apply. A naked return or
// an explicit nil is never exempt.
func exemptErrorReturn(pass *analysis.Pass, ret *ast.ReturnStmt, parents map[ast.Node]ast.Node) bool {
	if len(ret.Results) == 0 {
		return false // naked return: the named error may well be nil
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	switch e := last.(type) {
	case *ast.CallExpr:
		return errorConstructor(pass, e)
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return false
		}
		if e.Name == "nil" {
			return false
		}
		// A package-level error variable (ErrNoFreeGroups and friends) is
		// non-nil by convention.
		if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			return true
		}
		return guardedNonNil(pass, ret, obj, parents)
	case *ast.SelectorExpr:
		// pkg.ErrSomething or struct field holding a sentinel: exempt only
		// for package-qualified variables.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				return true
			}
		}
	}
	return false
}

// errorConstructor reports whether the call builds a (non-nil) error:
// fmt.Errorf, errors.New, errors.Join.
func errorConstructor(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return fn.Name() == "Errorf"
	case "errors":
		return fn.Name() == "New" || fn.Name() == "Join"
	}
	return false
}

// guardedNonNil reports whether the return sits in a branch that proves obj
// non-nil: the then-branch of an if whose condition conjoins `obj != nil`,
// or the else-branch of one conjoining... (only the != form guards the
// then-branch; the == form guards the else-branch).
func guardedNonNil(pass *analysis.Pass, ret ast.Node, obj types.Object, parents map[ast.Node]ast.Node) bool {
	for n := ret; n != nil; n = parents[n] {
		ifStmt, ok := parents[n].(*ast.IfStmt)
		if !ok {
			continue
		}
		inThen := ifStmt.Body == n
		inElse := ifStmt.Else == n
		if !inThen && !inElse {
			continue // we climbed out via Init or Cond
		}
		if inThen && condProvesNonNil(pass, ifStmt.Cond, obj, token.NEQ) {
			return true
		}
		if inElse && condProvesNonNil(pass, ifStmt.Cond, obj, token.EQL) {
			return true
		}
	}
	return false
}

// condProvesNonNil reports whether cond, taken as true (op==NEQ) or false
// (op==EQL), proves obj != nil. Conjunctions propagate the then-guarantee;
// disjunctions propagate the else-guarantee.
func condProvesNonNil(pass *analysis.Pass, cond ast.Expr, obj types.Object, op token.Token) bool {
	cond = ast.Unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch {
	case be.Op == op:
		return nilComparison(pass, be, obj)
	case op == token.NEQ && be.Op == token.LAND,
		op == token.EQL && be.Op == token.LOR:
		return condProvesNonNil(pass, be.X, obj, op) ||
			condProvesNonNil(pass, be.Y, obj, op)
	}
	return false
}

// nilComparison reports whether the comparison is between obj and nil.
func nilComparison(pass *analysis.Pass, be *ast.BinaryExpr, obj types.Object) bool {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isObj(be.X) && isNil(be.Y)) || (isNil(be.X) && isObj(be.Y))
}

// parentMap records each node's syntactic parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
