// Package use exercises the errpath analyzer.
package use

import (
	"fmt"

	"e/internal/blockdev"
)

func cond() bool { return false }

// checkedEverywhere is the idiom: the error is compared against nil.
func checkedEverywhere(d *blockdev.Dev) error {
	err := d.Submit(0, 1)
	if err != nil {
		return err
	}
	return nil
}

// initChecked binds and reads in the if statement itself.
func initChecked(d *blockdev.Dev) {
	if err := d.Flush(); err != nil {
		panic(err)
	}
}

// neverRead binds the error and discards it with a blank assignment, which
// launders the compiler's unused-variable check but is not a read.
func neverRead(d *blockdev.Dev) int {
	err := d.Submit(0, 1) // want `error from Dev.Submit assigned to err is never read on at least one path`
	_ = err
	return 42
}

// oneBranchUnchecked reads the error on the slow path only; the fast path
// returns with it unread.
func oneBranchUnchecked(d *blockdev.Dev) error {
	err := d.Flush() // want `error from Dev.Flush assigned to err is never read on at least one path`
	if cond() {
		return nil
	}
	return err
}

// overwrittenUnread drops the first error by reassigning before any read.
func overwrittenUnread(d *blockdev.Dev) error {
	err := d.Submit(0, 1) // want `error from Dev.Submit assigned to err is never read on at least one path`
	err = d.Flush()
	if err != nil {
		return err
	}
	return nil
}

// wrapped reads the error by wrapping it: handled, as far as a lint can
// tell.
func wrapped(d *blockdev.Dev) error {
	err := d.Flush()
	return fmt.Errorf("flush: %w", err)
}

// captured reads the error inside a closure; capture counts as a read.
func captured(d *blockdev.Dev) func() error {
	err := d.Submit(0, 1)
	return func() error { return err }
}

// panicPath never reaches exit on the unread path, so nothing leaks.
func panicPath(d *blockdev.Dev) error {
	err := d.Submit(0, 1)
	if cond() {
		panic("unrecoverable")
	}
	return err
}

// multiValue watches the trailing error of a multi-result I/O call.
func multiValue(d *blockdev.Dev, p []byte) int {
	n, err := d.ReadAt(p, 0) // want `error from Dev.ReadAt assigned to err is never read on at least one path`
	_ = err
	return n
}

// allowed documents a deliberate exception via suppression.
func allowed(d *blockdev.Dev) {
	//srclint:allow errpath best-effort warm-up read, failure is benign
	err := d.Submit(0, 1)
	_ = err
}

// nonContract errors (same shape, non-contract package) are not watched.
type local struct{}

func (local) Submit(lba int64, n int) error { return nil }

func nonContract(l local) int {
	err := l.Submit(0, 1)
	_ = err
	return 0
}
