// Package blockdev is a fixture stand-in for the real device layer: its
// import path ends in internal/blockdev, so its methods fall under the
// I/O-error contract shared by ioerr and errpath.
package blockdev

type Dev struct{}

func (d *Dev) Submit(lba int64, n int) error           { return nil }
func (d *Dev) Flush() error                            { return nil }
func (d *Dev) ReadAt(p []byte, off int64) (int, error) { return 0, nil }
