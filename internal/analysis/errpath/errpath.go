// Package errpath is the CFG upgrade of ioerr: where ioerr flags errors
// that are discarded at the call site (`_ =`, bare statement), errpath
// follows an error that WAS bound to a variable and flags it when at least
// one control-flow path reaches the function's exit — or overwrites the
// variable — without ever reading it.
//
// The analysis is a may-analysis: each assignment
//
//	err := dev.Submit(...)   // dev in internal/blockdev or internal/raid
//
// generates an "unchecked" fact keyed by the assignment site. Any read of
// the variable — a nil comparison, a return, wrapping with fmt.Errorf, even
// capture by a closure — kills the fact: the error has been looked at, and
// judging the quality of the handling is beyond a lint. An explicit blank
// discard (`_ = err`) is not a read: it only launders the unused-variable
// compile error. A write to the
// variable also kills the fact (the old error is gone either way), but a
// write with the fact still live is reported: the first error was
// overwritten unread. Facts that survive to the function's exit on any path
// are reported at their assignment site.
//
// Panic paths are exempt (the CFG gives a certain panic no successors), and
// paths that end in the blank identifier are ioerr's business, not ours.
package errpath

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"srccache/internal/analysis"
	"srccache/internal/analysis/cfg"
	"srccache/internal/analysis/ioerr"
)

// Analyzer implements the errpath check.
var Analyzer = &analysis.Analyzer{
	Name: "errpath",
	Doc:  "an error assigned from a blockdev/raid I/O call must be read on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// site is one error-producing assignment under watch.
type site struct {
	assign *ast.AssignStmt
	obj    types.Object // the error variable
	fn     *types.Func  // the I/O method that produced it
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pre-scan the body for gen sites so the transfer function is cheap and
	// allocation-free on the solver's hot path.
	sites := make(map[ast.Node]*site)
	ast.Inspect(body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			if s := genSite(pass, a); s != nil {
				sites[a] = s
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	g := cfg.New(body)
	problem := cfg.Problem{
		Must: false,
		Transfer: func(n ast.Node, facts cfg.Facts) {
			reads, writes := usesIn(pass, n)
			for k := range facts {
				s := k.(*site)
				if reads[s.obj] || writes[s.obj] {
					delete(facts, k)
				}
			}
			if s := sites[n]; s != nil {
				facts[s] = true
			}
		},
	}
	ins := cfg.Solve(g, problem)

	reported := make(map[*site]bool)
	report := func(s *site) {
		if reported[s] {
			return
		}
		reported[s] = true
		pass.Reportf(s.assign.Pos(),
			"error from %s.%s assigned to %s is never read on at least one path; blockdev/raid I/O errors must be handled (//srclint:allow errpath to override)",
			recvName(s.fn), s.fn.Name(), s.obj.Name())
	}

	cfg.Visit(g, problem, ins, func(n ast.Node, before cfg.Facts) {
		if len(before) == 0 {
			return
		}
		reads, writes := usesIn(pass, n)
		// Collect overwritten-unread sites in source order for determinism.
		var hit []*site
		for k := range before {
			s := k.(*site)
			if writes[s.obj] && !reads[s.obj] {
				hit = append(hit, s)
			}
		}
		sort.Slice(hit, func(i, j int) bool { return hit[i].assign.Pos() < hit[j].assign.Pos() })
		for _, s := range hit {
			report(s)
		}
	})

	var leaked []*site
	for k := range cfg.ExitFacts(g, ins) {
		leaked = append(leaked, k.(*site))
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].assign.Pos() < leaked[j].assign.Pos() })
	for _, s := range leaked {
		report(s)
	}
}

// genSite reports whether the assignment binds the error of a contract I/O
// call to a named variable: a single-call RHS whose trailing error lands in
// a non-blank identifier.
func genSite(pass *analysis.Pass, a *ast.AssignStmt) *site {
	if len(a.Rhs) != 1 || len(a.Lhs) == 0 {
		return nil
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, _ := ioerr.ContractCall(pass, call)
	if fn == nil {
		return nil
	}
	id, ok := a.Lhs[len(a.Lhs)-1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil || !isErrorType(obj.Type()) {
		return nil
	}
	return &site{assign: a, obj: obj, fn: fn}
}

// usesIn classifies every identifier occurrence inside n (including inside
// function literals — capturing an error counts as reading it): reads are
// rvalue uses, writes are assignment targets. An explicit blank discard
// (`_ = err`) is neither: it silences the compiler's unused-variable check
// without looking at the error, which is exactly the laundering shape this
// analyzer exists to catch.
func usesIn(pass *analysis.Pass, n ast.Node) (reads, writes map[types.Object]bool) {
	reads = make(map[types.Object]bool)
	writes = make(map[types.Object]bool)
	lhs := make(map[*ast.Ident]bool)
	discard := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		a, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		allBlank := len(a.Lhs) > 0
		for _, l := range a.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				lhs[id] = true
				if id.Name != "_" {
					allBlank = false
				}
			} else {
				allBlank = false
			}
		}
		if allBlank && len(a.Rhs) == 1 {
			if id, ok := ast.Unparen(a.Rhs[0]).(*ast.Ident); ok {
				discard[id] = true
			}
		}
		return true
	})
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			return true
		}
		switch {
		case lhs[id]:
			writes[obj] = true
		case discard[id]:
			// neither a read nor a write
		default:
			reads[obj] = true
		}
		return true
	})
	return reads, writes
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return fmt.Sprint(t)
}
