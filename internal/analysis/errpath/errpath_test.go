package errpath_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/errpath"
)

func TestErrPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errpath.Analyzer, "e/use")
}
