package wallclock_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wallclock.Analyzer,
		"a/internal/src", // positive: gated package
		"a/tools",        // negative: outside the simulation list
	)
}
