// Package wallclock forbids reading the wall clock in simulation packages.
//
// Every experiment table must be byte-identical across runs and across
// parallelism levels (ROADMAP, PR 1), so simulation code operates on
// internal/vtime exclusively. time.Duration values and constants remain
// fine — only the functions that observe or wait on the host clock are
// banned. The two legitimate progress-timer sites carry
// //srclint:allow wallclock directives.
package wallclock

import (
	"go/ast"
	"go/types"

	"srccache/internal/analysis"
)

// Analyzer implements the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Sleep/Tick etc. in simulation packages (use internal/vtime)",
	Run:  run,
}

// banned lists the time package functions that observe or wait on the host
// clock. Conversions and constants (time.Duration, time.Millisecond, ...)
// are allowed: internal/vtime deliberately mirrors them.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), analysis.SimPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulation code must use internal/vtime (//srclint:allow wallclock to override)",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
