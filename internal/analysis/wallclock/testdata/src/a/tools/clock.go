// Negative fixture: tooling packages outside the simulation list may use
// the wall clock freely.
package tools

import "time"

func Stopwatch() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}
