// Positive fixture: the package path ends in internal/src, so the
// determinism contract applies.
package src

import "time"

func bad() time.Duration {
	t0 := time.Now()             // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	<-time.Tick(time.Second)     // want `time\.Tick reads the wall clock`
	return time.Since(t0)        // want `time\.Since reads the wall clock`
}

func badValueUse() {
	// Referencing the function without calling it is just as banned.
	f := time.After // want `time\.After reads the wall clock`
	_ = f
}

func allowedTrailing() time.Time {
	return time.Now() //srclint:allow wallclock progress display only
}

func allowedAbove() time.Time {
	//srclint:allow wallclock progress display only
	return time.Now()
}

// Durations, constants and conversions are the vtime interop surface and
// stay legal.
func durationsAreFine(d time.Duration) time.Duration {
	return d + 3*time.Millisecond
}
