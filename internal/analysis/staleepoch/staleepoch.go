// Package staleepoch enforces the cluster routing protocol's stale-epoch
// contract (DESIGN.md §8 rule 11): inside the cluster packages, any call
// that can surface a stale-epoch contract error (netblock.ErrStaleEpoch,
// cluster.ErrStaleEpoch) must reach a table-refetch/retry handler.
//
// Surfacing is modular: a function surfaces a contract when it is
// annotated //srclint:surfaces <contract>, or when its body constructs the
// contract error (a package-level error var annotated
// //srclint:contracterr <contract>, possibly imported — resolved through
// package facts). A call to a surfacing function is satisfied when one of:
//
//  1. the enclosing declaration is itself annotated (or inferred)
//     //srclint:surfaces for that contract — responsibility passes to its
//     callers;
//  2. a guard `errors.Is(err, <contract error>)` is forward-reachable from
//     the call in the function's CFG, and from the guard a handler — a
//     call whose name starts with refresh/refetch, or whose facts carry
//     //srclint:handles — is forward-reachable in turn;
//  3. the call sits in a function literal passed directly as an argument
//     to a call whose callee is annotated //srclint:handles for the
//     contract (the fleet's tryOwners closure shape).
//
// //srclint:handles annotations are verified, not trusted: the annotated
// body must itself contain the guard and a refetch/refresh call reachable
// from it, so a handler cannot rot into a pass-through.
package staleepoch

import (
	"go/ast"
	"go/types"
	"strings"

	"srccache/internal/analysis"
	"srccache/internal/analysis/callgraph"
	"srccache/internal/analysis/cfg"
	"srccache/internal/analysis/modfacts"
)

// Analyzer is the staleepoch check.
var Analyzer = &analysis.Analyzer{
	Name: "staleepoch",
	Doc:  "calls that can surface a stale-epoch contract error must reach a table-refetch/retry handler (cluster packages)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), analysis.ClusterPackages) {
		return nil
	}
	files := nonTestFiles(pass)
	if len(files) == 0 {
		return nil
	}
	own := ownFacts(pass, files)
	g := callgraph.Build(pass.Fset, files, pass.TypesInfo)
	contracts := modfacts.ContractErrorVars(files, pass.TypesInfo)

	c := &checker{pass: pass, g: g, own: own, contracts: contracts}
	for _, n := range g.Nodes {
		c.checkNode(n)
	}
	for _, n := range g.Nodes {
		c.verifyHandles(n)
	}
	return nil
}

// nonTestFiles drops _test.go files: test code drives the protocol from
// outside and legitimately pokes at stale states.
func nonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// ownFacts returns the driver-computed facts, or computes them locally
// (analysistest and direct use).
func ownFacts(pass *analysis.Pass, files []*ast.File) *analysis.PackageFacts {
	if pass.OwnFacts != nil {
		return pass.OwnFacts
	}
	return modfacts.Compute(pass.Fset, files, pass.TypesInfo, pass.Pkg, pass.Dirs, pass.ImportedFacts)
}

type checker struct {
	pass      *analysis.Pass
	g         *callgraph.Graph
	own       *analysis.PackageFacts
	contracts *modfacts.ContractVars
}

// surfacesOf returns the contracts a call's callee can surface, with a
// display name for diagnostics.
func (c *checker) surfacesOf(call *ast.CallExpr) (contracts []string, name string) {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return nil, ""
	}
	fname := modfacts.FuncName(fn)
	if fn.Pkg() == c.pass.Pkg {
		if ff := c.own.Func(fname); ff != nil {
			return ff.Surfaces, fname
		}
		return nil, ""
	}
	if fn.Pkg() == nil {
		return nil, ""
	}
	path := analysis.NormalizePkgPath(fn.Pkg().Path())
	if ff := c.pass.ImportedFacts(path).Func(fname); ff != nil {
		return ff.Surfaces, fn.Pkg().Name() + "." + fname
	}
	return nil, ""
}

// handlesOf reports whether a called function is annotated as a handler
// for the contract (own annotation or imported fact).
func (c *checker) handlesOf(call *ast.CallExpr, contract string) bool {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	fname := modfacts.FuncName(fn)
	var ff *analysis.FuncFact
	if fn.Pkg() == c.pass.Pkg {
		ff = c.own.Func(fname)
	} else if fn.Pkg() != nil {
		ff = c.pass.ImportedFacts(analysis.NormalizePkgPath(fn.Pkg().Path())).Func(fname)
	}
	if ff == nil {
		return false
	}
	for _, h := range ff.Handles {
		if h == contract {
			return true
		}
	}
	return false
}

// declFact returns the fact of the declaration enclosing a node (the node
// itself for declarations, the lexically enclosing decl for literals).
func (c *checker) declFact(n *callgraph.Node) *analysis.FuncFact {
	d := n
	if d.Encl != nil {
		d = d.Encl
	}
	return c.own.Func(d.Name)
}

func (c *checker) checkNode(n *callgraph.Node) {
	body := n.Body()
	if body == nil {
		return
	}
	var sites []*ast.CallExpr
	n.Walk(func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			sites = append(sites, call)
		}
		return true
	})
	if len(sites) == 0 {
		return
	}
	var flow *flowInfo // built on first demand; most functions need none
	for _, call := range sites {
		surfaces, name := c.surfacesOf(call)
		for _, contract := range surfaces {
			if c.declSurfaces(n, contract) {
				continue // rule 1: responsibility passed to callers
			}
			if n.Lit != nil && c.litPassedToHandler(n, contract) {
				continue // rule 3: closure run by a verified handler
			}
			if flow == nil {
				flow = newFlowInfo(body)
			}
			if c.guardedAndHandled(flow, call, contract) {
				continue // rule 2: guard then handler reachable
			}
			c.pass.Reportf(call.Pos(),
				"call to %s can surface the %s contract error but no errors.Is guard reaching a refetch/refresh handler follows; handle it or annotate the caller //srclint:surfaces %s",
				name, contract, contract)
		}
	}
}

// declSurfaces reports whether the node's enclosing declaration surfaces
// the contract (annotation or inference).
func (c *checker) declSurfaces(n *callgraph.Node, contract string) bool {
	ff := c.declFact(n)
	if ff == nil {
		return false
	}
	for _, s := range ff.Surfaces {
		if s == contract {
			return true
		}
	}
	return false
}

// litPassedToHandler implements rule 3: the literal is a direct argument
// of a call whose callee handles the contract.
func (c *checker) litPassedToHandler(n *callgraph.Node, contract string) bool {
	encl := n.Encl
	if encl == nil || encl.Body() == nil {
		return false
	}
	found := false
	ast.Inspect(encl.Body(), func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if ast.Unparen(arg) == n.Lit && c.handlesOf(call, contract) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// verifyHandles checks every //srclint:handles annotation against the
// body: the handler must contain the contract guard and a refetch/refresh
// call reachable from it. This is what makes rule 3 safe — and what the
// seeding-removal test deletes.
func (c *checker) verifyHandles(n *callgraph.Node) {
	if n.Decl == nil {
		return
	}
	args, ok := analysis.Directive(n.Decl.Doc, "handles")
	if !ok || n.Body() == nil {
		return
	}
	flow := newFlowInfo(n.Body())
	for _, contract := range strings.Fields(args) {
		if c.handlerVerified(flow, contract) {
			continue
		}
		c.pass.Reportf(n.Decl.Pos(),
			"%s is annotated //srclint:handles %s but its body has no errors.Is(err, <%s error>) guard reaching a refetch/refresh call — the handler annotation has rotted",
			n.Name, contract, contract)
	}
}

func (c *checker) handlerVerified(flow *flowInfo, contract string) bool {
	for gi, loc := range flow.nodes {
		if !c.isGuard(loc.node, contract) {
			continue
		}
		for hi, hloc := range flow.nodes {
			if c.isHandler(hloc.node, contract) && flow.reaches(gi, hi) {
				return true
			}
		}
	}
	return false
}

// guardedAndHandled implements rule 2 over the function CFG.
func (c *checker) guardedAndHandled(flow *flowInfo, call *ast.CallExpr, contract string) bool {
	ci := flow.indexOf(call)
	if ci < 0 {
		return false
	}
	for gi, loc := range flow.nodes {
		if !c.isGuard(loc.node, contract) || !flow.reaches(ci, gi) {
			continue
		}
		for hi, hloc := range flow.nodes {
			if c.isHandler(hloc.node, contract) && flow.reaches(gi, hi) {
				return true
			}
		}
	}
	return false
}

// isGuard reports whether a CFG node contains errors.Is(_, E) where E is
// the contract's error.
func (c *checker) isGuard(node ast.Node, contract string) bool {
	found := false
	ast.Inspect(node, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok || !modfacts.IsErrorsClassify(c.pass.TypesInfo, call) || len(call.Args) < 2 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok && c.contractOfIdent(id) == contract {
			found = true
			return false
		}
		if sel, ok := ast.Unparen(call.Args[1]).(*ast.SelectorExpr); ok && c.contractOfIdent(sel.Sel) == contract {
			found = true
			return false
		}
		return true
	})
	return found
}

func (c *checker) contractOfIdent(id *ast.Ident) string {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return ""
	}
	if ct := c.contracts.Contract(obj); ct != "" {
		return ct
	}
	if obj.Pkg() != nil && obj.Pkg() != c.pass.Pkg {
		return c.pass.ImportedFacts(analysis.NormalizePkgPath(obj.Pkg().Path())).Contract(obj.Name())
	}
	return ""
}

// isHandler reports whether a CFG node contains a handler call: a callee
// whose name starts with refresh/refetch, or whose facts handle the
// contract.
func (c *checker) isHandler(node ast.Node, contract string) bool {
	found := false
	ast.Inspect(node, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := calleeBaseName(c.pass.TypesInfo, call); name != "" {
			l := strings.ToLower(name)
			if strings.HasPrefix(l, "refresh") || strings.HasPrefix(l, "refetch") {
				found = true
				return false
			}
		}
		if c.handlesOf(call, contract) {
			found = true
			return false
		}
		return true
	})
	return found
}

func calleeBaseName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.Callee(info, call); fn != nil {
		return fn.Name()
	}
	// Function-value calls keep their syntactic name: a local `refetch`
	// closure variable still reads as a handler.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// ---- CFG position/reachability ------------------------------------------

// flowInfo flattens a function CFG into located nodes plus a block
// reachability relation, so "is a guard forward-reachable from this call"
// is a table lookup.
type flowInfo struct {
	g     *cfg.Graph
	nodes []flowLoc
	// reach[i][j]: block j is reachable from block i (reflexive).
	reach []map[int]bool
}

type flowLoc struct {
	node  ast.Node
	block int // cfg block index
	idx   int // position within the block
}

func newFlowInfo(body *ast.BlockStmt) *flowInfo {
	f := &flowInfo{g: cfg.New(body)}
	for _, blk := range f.g.Blocks {
		for i, n := range blk.Nodes {
			f.nodes = append(f.nodes, flowLoc{node: n, block: blk.Index, idx: i})
		}
	}
	f.reach = make([]map[int]bool, len(f.g.Blocks))
	for _, blk := range f.g.Blocks {
		seen := map[int]bool{blk.Index: true}
		work := []*cfg.Block{blk}
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			for _, s := range b.Succs {
				if !seen[s.Index] {
					seen[s.Index] = true
					work = append(work, s)
				}
			}
		}
		f.reach[blk.Index] = seen
	}
	return f
}

// indexOf locates the flow node containing the given call, -1 if the call
// is unreachable dead code.
func (f *flowInfo) indexOf(call *ast.CallExpr) int {
	for i, loc := range f.nodes {
		if containsNode(loc.node, call) {
			return i
		}
	}
	return -1
}

// reaches reports whether flow node j is forward-reachable from flow node
// i: later in the same block, or in a block reachable from i's.
func (f *flowInfo) reaches(i, j int) bool {
	a, b := f.nodes[i], f.nodes[j]
	if a.block == b.block {
		return b.idx >= a.idx || blockInCycle(f, a.block)
	}
	return f.reach[a.block][b.block]
}

// blockInCycle reports whether a block can re-reach itself (it sits on a
// loop), in which case earlier nodes in the block are reachable again.
func blockInCycle(f *flowInfo, block int) bool {
	for _, s := range f.g.Blocks[block].Succs {
		if f.reach[s.Index][block] {
			return true
		}
	}
	return false
}

func containsNode(outer ast.Node, inner ast.Node) bool {
	if outer == nil {
		return false
	}
	found := false
	ast.Inspect(outer, func(x ast.Node) bool {
		if found {
			return false
		}
		if x == inner {
			found = true
			return false
		}
		return true
	})
	return found
}
