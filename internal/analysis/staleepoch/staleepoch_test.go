package staleepoch_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/staleepoch"
)

func TestStaleEpoch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), staleepoch.Analyzer,
		"a/internal/cluster/fleet")
}

// TestOutOfScope: the contract package itself is not in the cluster scope,
// so the analyzer must stay silent on it even though it constructs the
// contract error.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), staleepoch.Analyzer, "nb")
}
