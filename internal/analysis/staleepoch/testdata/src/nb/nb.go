// Package nb is a miniature netblock: it declares the stale-epoch
// contract error and a client whose ReadAt can surface it.
package nb

import "errors"

// ErrStaleEpoch is returned when the server refuses a request routed with
// an outdated placement table.
//
//srclint:contracterr staleepoch
var ErrStaleEpoch = errors.New("nb: stale routing epoch")

// Client is a toy remote-block client.
type Client struct{ epoch uint64 }

// ReadAt reads a block; a member that no longer owns the range refuses
// with the stale-epoch error.
//
//srclint:surfaces staleepoch
func (c *Client) ReadAt(p []byte, off int64) error {
	if c.epoch == 0 {
		return ErrStaleEpoch
	}
	return nil
}

// Refresh bumps the client's view of the placement table.
func (c *Client) Refresh() { c.epoch++ }
