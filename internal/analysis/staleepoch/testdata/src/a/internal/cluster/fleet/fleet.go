// Package fleet exercises every rule of the staleepoch analyzer against
// the nb contract package.
package fleet

import (
	"errors"
	"fmt"

	"nb"
)

type pool struct{ c *nb.Client }

// bad calls a surfacing function with no handler on any path.
func (p *pool) bad(buf []byte) error {
	return p.c.ReadAt(buf, 0) // want `call to nb.Client.ReadAt can surface the staleepoch contract`
}

// guarded handles the stale error with a refetch on the retry path.
func (p *pool) guarded(buf []byte) error {
	var err error
	for i := 0; i < 3; i++ {
		err = p.c.ReadAt(buf, 0)
		if errors.Is(err, nb.ErrStaleEpoch) {
			p.refetchTable()
			continue
		}
		return err
	}
	return err
}

func (p *pool) refetchTable() {}

// surfacer passes responsibility to its own callers by annotation.
//
//srclint:surfaces staleepoch
func (p *pool) surfacer(buf []byte) error {
	return p.c.ReadAt(buf, 0)
}

// callsSurfacer trips over the intra-package fact of surfacer.
func (p *pool) callsSurfacer(buf []byte) error {
	return p.surfacer(buf) // want `call to pool.surfacer can surface the staleepoch contract`
}

// makeStale constructs the contract error itself; surfacing is inferred,
// no annotation needed.
func (p *pool) makeStale() error {
	return fmt.Errorf("routing: %w", nb.ErrStaleEpoch)
}

// callsMaker trips over the inferred fact.
func (p *pool) callsMaker() error {
	return p.makeStale() // want `call to pool.makeStale can surface the staleepoch contract`
}

// runOp is the verified closure-runner: guard plus refetch on the retry
// path, annotated so closures handed to it are covered.
//
//srclint:handles staleepoch
func (p *pool) runOp(op func(*nb.Client) error) error {
	var err error
	for i := 0; i < 2; i++ {
		err = op(p.c)
		if errors.Is(err, nb.ErrStaleEpoch) {
			p.refetchTable()
			continue
		}
		return err
	}
	return err
}

// viaClosure is satisfied by the closure rule: the literal is an argument
// to the handles-annotated runOp.
func (p *pool) viaClosure(buf []byte) error {
	return p.runOp(func(c *nb.Client) error { return c.ReadAt(buf, 0) })
}

// brokenHandler claims to handle the contract but never refetches: both
// the rotten annotation and the unguarded call are reported.
//
//srclint:handles staleepoch
func (p *pool) brokenHandler(buf []byte) error { // want `annotated //srclint:handles staleepoch but its body has no errors.Is`
	err := p.c.ReadAt(buf, 0) // want `call to nb.Client.ReadAt can surface the staleepoch contract`
	if errors.Is(err, nb.ErrStaleEpoch) {
		return err
	}
	return nil
}
