// Package callgraph builds a static, package-local call graph for the
// interprocedural srclint analyzers (confined, atomicfreeze, chandisc).
//
// Nodes are the package's function declarations plus every function
// literal; edges record the call site and how control transfers: a plain
// call, a `go` launch, or a `defer`. Calls through function-typed
// variables, struct fields, and parameters are resolved by a small flow
// analysis over the common assignment shapes (x = f, field: f in a
// composite literal, f passed as an argument to a known callee), so
// `w := s.worker; go w()` produces a Go edge to worker.
//
// Everything is deterministic: nodes are ordered by source position (not
// by file-slice or map order), edges by call-site position, and SCCs are
// emitted by Tarjan's algorithm seeded in node order, so the iteration
// order — and therefore every diagnostic order derived from it — is a
// pure function of the source text.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"srccache/internal/analysis"
)

// Kind classifies how an edge transfers control.
type Kind int

const (
	// Call is a synchronous call: the callee runs on the caller's
	// goroutine before the next statement.
	Call Kind = iota
	// Go is a goroutine launch site: the callee runs concurrently.
	Go
	// Defer is a deferred call: the callee runs on the caller's
	// goroutine, at function exit.
	Defer
)

func (k Kind) String() string {
	switch k {
	case Go:
		return "go"
	case Defer:
		return "defer"
	}
	return "call"
}

// A Node is one function: a declaration or a literal.
type Node struct {
	// Index is the node's position in Graph.Nodes: declaration order by
	// source position, stable across file-slice permutations.
	Index int

	// Name is a human-readable label: "run", "Serial.Submit", or
	// "Close$1" for the first literal lexically inside Close.
	Name string

	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations

	// Obj is the declared *types.Func object; nil for literals.
	Obj *types.Func

	// Encl is the declaration node whose body lexically encloses a
	// literal (transitively: a literal inside a literal inside Close
	// reports Close). Nil for declarations.
	Encl *Node

	Out []Edge // edges from this node, in call-site position order
	In  []Edge // reverse edges, same ordering rule

	// Summary holds the node's computed effect summary; populated by
	// Graph.ComputeSummaries.
	Summary Summary
}

// Body returns the node's function body (nil for bodiless declarations).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// Walk visits the node's own syntax in source order, not descending into
// nested function literals (their statements belong to their own nodes).
// fn's return value gates descent exactly as in ast.Inspect.
func (n *Node) Walk(fn func(ast.Node) bool) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		return fn(x)
	})
}

// An Edge is one call site.
type Edge struct {
	Kind   Kind
	Caller *Node
	Callee *Node
	// Site is the call expression at the site. For a `go f()` launch it
	// is the launched call; Site.Pos() is the diagnostic anchor.
	Site *ast.CallExpr
}

// A Graph is the package's call graph.
type Graph struct {
	Nodes []*Node

	info  *types.Info
	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
	flows map[types.Object][]*Node
}

// Callees maps a call expression to the package-local nodes it may invoke
// (deterministic order). See resolve for the resolution rules.
func (g *Graph) Callees(call *ast.CallExpr) []*Node {
	return g.resolve(call, g.flows)
}

// NodeOf returns the node for a declared function object, or nil.
func (g *Graph) NodeOf(obj *types.Func) *Node { return g.byObj[obj] }

// LitNode returns the node for a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build constructs the call graph of one package.
func Build(fset *token.FileSet, files []*ast.File, info *types.Info) *Graph {
	g := &Graph{
		info:  info,
		byObj: make(map[*types.Func]*Node),
		byLit: make(map[*ast.FuncLit]*Node),
	}
	g.collectNodes(fset, files)
	g.flows = g.solveFlows(files)
	g.addEdges(g.flows)
	return g
}

// collectNodes gathers declarations and literals and numbers them in
// source-position order regardless of the order files were supplied in.
func (g *Graph) collectNodes(fset *token.FileSet, files []*ast.File) {
	type protoNode struct {
		node *Node
		file string
		off  int
	}
	var protos []protoNode
	add := func(n *Node, pos token.Pos) {
		p := fset.Position(pos)
		protos = append(protos, protoNode{n, p.Filename, p.Offset})
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := g.info.Defs[fd.Name].(*types.Func)
			n := &Node{Name: declName(fd), Decl: fd, Obj: obj}
			add(n, fd.Pos())
			if obj != nil {
				g.byObj[obj] = n
			}
			// Literals nested in this declaration, numbered lexically.
			seq := 0
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				if lit, ok := x.(*ast.FuncLit); ok {
					seq++
					ln := &Node{Name: n.Name + litSuffix(seq), Lit: lit, Encl: n}
					add(ln, lit.Pos())
					g.byLit[lit] = ln
				}
				return true
			})
		}
	}
	sort.SliceStable(protos, func(i, j int) bool {
		if protos[i].file != protos[j].file {
			return protos[i].file < protos[j].file
		}
		return protos[i].off < protos[j].off
	})
	for i, p := range protos {
		p.node.Index = i
		g.Nodes = append(g.Nodes, p.node)
	}
}

func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName extracts the receiver's base type name ("*shard" -> "shard").
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver shard[T]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return "?"
}

func litSuffix(seq int) string {
	// "$1", "$2", ... — the gc compiler's anonymous-function spelling.
	s := "$"
	if seq == 0 {
		return s + "0"
	}
	var digits []byte
	for seq > 0 {
		digits = append([]byte{byte('0' + seq%10)}, digits...)
		seq /= 10
	}
	return s + string(digits)
}

// solveFlows computes, for every function-typed variable/field/parameter
// object, the set of package-local functions that may flow into it. The
// analysis is a may-analysis over direct bindings (assignment, composite
// literal field, argument to a statically known callee) closed under
// object-to-object copies.
func (g *Graph) solveFlows(files []*ast.File) map[types.Object][]*Node {
	direct := make(map[types.Object]map[*Node]bool) // obj <- function values
	copies := make(map[types.Object]map[types.Object]bool)

	addFunc := func(dst types.Object, n *Node) {
		if dst == nil || n == nil {
			return
		}
		if direct[dst] == nil {
			direct[dst] = make(map[*Node]bool)
		}
		direct[dst][n] = true
	}
	addCopy := func(dst, src types.Object) {
		if dst == nil || src == nil {
			return
		}
		if copies[dst] == nil {
			copies[dst] = make(map[types.Object]bool)
		}
		copies[dst][src] = true
	}
	// bind records "dst may hold the value of rhs".
	bind := func(dst types.Object, rhs ast.Expr) {
		if dst == nil {
			return
		}
		rhs = ast.Unparen(rhs)
		if n := g.funcValue(rhs); n != nil {
			addFunc(dst, n)
			return
		}
		if src := g.valueObj(rhs); src != nil {
			addCopy(dst, src)
		}
	}

	for _, f := range files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						bind(g.valueObj(lhs), s.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						bind(g.info.Defs[name], s.Values[i])
					}
				}
			case *ast.CompositeLit:
				for _, el := range s.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							bind(g.fieldKeyObj(key), kv.Value)
						}
					}
				}
			case *ast.CallExpr:
				// Arguments to a statically known package-local callee
				// flow into its parameter objects.
				callee := g.staticCallee(s)
				if callee == nil {
					return true
				}
				params := calleeParams(callee)
				for i, arg := range s.Args {
					if i < len(params) {
						bind(params[i], arg)
					}
				}
			}
			return true
		})
	}

	// Close copies over direct bindings to a fixpoint. Deterministic:
	// results are sorted by node index on extraction.
	changed := true
	for changed {
		changed = false
		for dst, srcs := range copies {
			for src := range srcs {
				for n := range direct[src] {
					if direct[dst] == nil {
						direct[dst] = make(map[*Node]bool)
					}
					if !direct[dst][n] {
						direct[dst][n] = true
						changed = true
					}
				}
			}
		}
	}

	out := make(map[types.Object][]*Node, len(direct))
	for obj, set := range direct {
		nodes := make([]*Node, 0, len(set))
		for n := range set {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Index < nodes[j].Index })
		out[obj] = nodes
	}
	return out
}

// funcValue resolves an expression that denotes a package-local function
// value without calling it: a function name, a method value, or a literal.
func (g *Graph) funcValue(e ast.Expr) *Node {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.byLit[e]
	case *ast.Ident:
		if fn, ok := g.info.Uses[e].(*types.Func); ok {
			return g.byObj[fn]
		}
	case *ast.SelectorExpr:
		if sel := g.info.Selections[e]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return g.byObj[fn]
			}
			return nil
		}
		if fn, ok := g.info.Uses[e.Sel].(*types.Func); ok {
			return g.byObj[fn]
		}
	}
	return nil
}

// ValueObj resolves an lvalue/rvalue expression to the variable or field
// object it denotes, or nil — the shared resolution rule analyzers use to
// name channels and aliases.
func (g *Graph) ValueObj(e ast.Expr) types.Object { return g.valueObj(e) }

// valueObj resolves an lvalue/rvalue expression to the variable or field
// object it denotes, or nil.
func (g *Graph) valueObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := g.info.Defs[e]; obj != nil {
			return obj
		}
		if v, ok := g.info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel := g.info.Selections[e]; sel != nil {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		if v, ok := g.info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// fieldKeyObj resolves a composite-literal field key to its field object.
func (g *Graph) fieldKeyObj(key *ast.Ident) types.Object {
	if v, ok := g.info.Uses[key].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// staticCallee resolves a call to its package-local declared callee node.
func (g *Graph) staticCallee(call *ast.CallExpr) *Node {
	if fn := analysis.Callee(g.info, call); fn != nil {
		return g.byObj[fn]
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return g.byLit[lit]
	}
	return nil
}

// calleeParams returns the callee's parameter objects in order.
func calleeParams(n *Node) []types.Object {
	var sig *types.Signature
	if n.Obj != nil {
		sig, _ = n.Obj.Type().(*types.Signature)
	}
	if sig == nil {
		return nil
	}
	params := make([]types.Object, 0, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		params = append(params, sig.Params().At(i))
	}
	return params
}

// addEdges walks every node's own statements and records its call sites.
func (g *Graph) addEdges(flows map[types.Object][]*Node) {
	for _, n := range g.Nodes {
		caller := n
		emit := func(kind Kind, call *ast.CallExpr) {
			for _, callee := range g.resolve(call, flows) {
				caller.Out = append(caller.Out, Edge{Kind: kind, Caller: caller, Callee: callee, Site: call})
			}
		}
		caller.Walk(func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.GoStmt:
				emit(Go, s.Call)
				// Arguments of the launched call are evaluated on the
				// caller's goroutine; the generic CallExpr case below
				// handles calls nested inside them. Skip only the
				// launched call itself.
				for _, arg := range s.Call.Args {
					walkCalls(arg, func(c *ast.CallExpr) { emit(Call, c) })
				}
				walkCalls(s.Call.Fun, func(c *ast.CallExpr) { emit(Call, c) })
				return false
			case *ast.DeferStmt:
				emit(Defer, s.Call)
				for _, arg := range s.Call.Args {
					walkCalls(arg, func(c *ast.CallExpr) { emit(Call, c) })
				}
				walkCalls(s.Call.Fun, func(c *ast.CallExpr) { emit(Call, c) })
				return false
			case *ast.CallExpr:
				emit(Call, s)
			}
			return true
		})
		// Node.Walk visits in source order; resolve() returns callees in
		// index order, so Out is already deterministic. Fill In below.
	}
	for _, n := range g.Nodes {
		for i := range n.Out {
			e := n.Out[i]
			e.Callee.In = append(e.Callee.In, e)
		}
	}
	for _, n := range g.Nodes {
		sort.SliceStable(n.In, func(i, j int) bool {
			if n.In[i].Caller.Index != n.In[j].Caller.Index {
				return n.In[i].Caller.Index < n.In[j].Caller.Index
			}
			return n.In[i].Site.Pos() < n.In[j].Site.Pos()
		})
	}
}

// resolve maps a call expression to the package-local nodes it may invoke.
// A function literal passed to an unknown (external or dynamic) callee is
// treated as potentially invoked at the call site, so `once.Do(func(){...})`
// attributes the literal's effects to the caller.
func (g *Graph) resolve(call *ast.CallExpr, flows map[types.Object][]*Node) []*Node {
	if n := g.staticCallee(call); n != nil {
		return []*Node{n}
	}
	// Call through a function-typed variable, field or parameter.
	if obj := g.valueObj(call.Fun); obj != nil {
		if nodes := flows[obj]; len(nodes) > 0 {
			return nodes
		}
	}
	if analysis.Callee(g.info, call) != nil {
		return nil // known external function: no local node
	}
	// Unknown callee: conservatively assume it may invoke any local
	// function value appearing in its arguments (sync.Once.Do, sort.Slice).
	var out []*Node
	for _, arg := range call.Args {
		if n := g.funcValue(arg); n != nil {
			out = append(out, n)
		} else if obj := g.valueObj(arg); obj != nil {
			out = append(out, flows[obj]...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return dedupeNodes(out)
}

func dedupeNodes(nodes []*Node) []*Node {
	out := nodes[:0]
	var prev *Node
	for _, n := range nodes {
		if n != prev {
			out = append(out, n)
		}
		prev = n
	}
	return out
}

// walkCalls visits every CallExpr in e, not descending into literals.
func walkCalls(e ast.Expr, fn func(*ast.CallExpr)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := x.(*ast.CallExpr); ok {
			fn(c)
		}
		return true
	})
}

// SCCs returns the graph's strongly connected components in reverse
// topological order (callees before callers), each component's members in
// node-index order. Tarjan's algorithm seeded in node order makes the
// result a pure function of the graph.
func (g *Graph) SCCs() [][]*Node {
	n := len(g.Nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []*Node
	var sccs [][]*Node
	next := 0

	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		index[v.Index] = next
		low[v.Index] = next
		next++
		stack = append(stack, v)
		onStack[v.Index] = true
		for _, e := range v.Out {
			w := e.Callee
			if index[w.Index] < 0 {
				strongconnect(w)
				low[v.Index] = min(low[v.Index], low[w.Index])
			} else if onStack[w.Index] {
				low[v.Index] = min(low[v.Index], index[w.Index])
			}
		}
		if low[v.Index] == index[v.Index] {
			var scc []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w.Index] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].Index < scc[j].Index })
			sccs = append(sccs, scc)
		}
	}
	for _, v := range g.Nodes {
		if index[v.Index] < 0 {
			strongconnect(v)
		}
	}
	return sccs
}

// EnclosingDecl returns the named declaration a node belongs to: the node
// itself for declarations, the lexically enclosing declaration for
// literals.
func (n *Node) EnclosingDecl() *Node {
	if n.Encl != nil {
		return n.Encl
	}
	return n
}
