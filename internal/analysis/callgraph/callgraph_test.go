package callgraph

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// fixture is a small multi-file package covering the edge kinds, method
// calls, function-value flow, and a recursion cycle.
var fixture = map[string]string{
	"a.go": `package p

type shard struct{ n int }

func (s *shard) run() {
	s.step()
}

func (s *shard) step() {
	if s.n > 0 {
		s.n--
		s.step()
	}
}

func ping(k int) { pong(k) }
`,
	"b.go": `package p

func pong(k int) {
	if k > 0 {
		ping(k - 1)
	}
}

func launch(s *shard) {
	w := s.run
	go w()
	defer s.step()
	go func() { s.step() }()
}
`,
}

// buildOrder parses the fixture files in the given name order, typechecks,
// and builds the graph.
func buildOrder(t *testing.T, names []string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, fixture[name], parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, files, info); err != nil {
		t.Fatal(err)
	}
	return Build(fset, files, info)
}

// render serializes a graph into a canonical string: node order, edge
// order, and SCC order all appear verbatim.
func render(g *Graph) string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%d %s:", n.Index, n.Name)
		for _, e := range n.Out {
			fmt.Fprintf(&b, " %s->%s", e.Kind, e.Callee.Name)
		}
		b.WriteString("\n")
	}
	b.WriteString("sccs:")
	for _, scc := range g.SCCs() {
		var names []string
		for _, n := range scc {
			names = append(names, n.Name)
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(names, " "))
	}
	return b.String()
}

// TestDeterministicUnderFileOrder asserts the graph — node indices, edge
// lists, SCC emission — is byte-identical no matter the order files are
// handed to Build.
func TestDeterministicUnderFileOrder(t *testing.T) {
	want := render(buildOrder(t, []string{"a.go", "b.go"}))
	got := render(buildOrder(t, []string{"b.go", "a.go"}))
	if got != want {
		t.Errorf("graph depends on file order:\n--- a,b ---\n%s\n--- b,a ---\n%s", want, got)
	}
}

// TestGraphShape pins the expected nodes and edges: method calls resolve,
// go/defer sites get their kinds, a method value launched via `go` still
// reaches its target, and closures hang off their enclosing declaration.
func TestGraphShape(t *testing.T) {
	g := buildOrder(t, []string{"a.go", "b.go"})

	byName := make(map[string]*Node)
	for _, n := range g.Nodes {
		byName[n.Name] = n
	}
	for _, name := range []string{"shard.run", "shard.step", "ping", "pong", "launch", "launch$1"} {
		if byName[name] == nil {
			t.Fatalf("missing node %q; have %v", name, nodeNames(g))
		}
	}

	edges := make(map[string]bool)
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			edges[fmt.Sprintf("%s %s %s", n.Name, e.Kind, e.Callee.Name)] = true
		}
	}
	for _, want := range []string{
		"shard.run call shard.step",
		"shard.step call shard.step",
		"ping call pong",
		"pong call ping",
		"launch go shard.run", // method value w := s.run; go w()
		"launch defer shard.step",
		"launch go launch$1",
		"launch$1 call shard.step",
	} {
		if !edges[want] {
			t.Errorf("missing edge %q; have %v", want, keys(edges))
		}
	}

	// launch$1 is anchored to its enclosing declaration.
	if d := byName["launch$1"].EnclosingDecl(); d == nil || d.Name != "launch" {
		t.Errorf("launch$1 EnclosingDecl = %v, want launch", d)
	}

	// The ping/pong cycle lands in one SCC, in index order, and callees
	// come before callers in the reverse-topological emission.
	var pingSCC []*Node
	order := make(map[string]int)
	for i, scc := range g.SCCs() {
		for _, n := range scc {
			order[n.Name] = i
			if n.Name == "ping" || n.Name == "pong" {
				pingSCC = scc
			}
		}
	}
	if len(pingSCC) != 2 {
		t.Fatalf("ping/pong SCC has %d members", len(pingSCC))
	}
	if pingSCC[0].Index > pingSCC[1].Index {
		t.Errorf("SCC members not in index order: %s before %s", pingSCC[0].Name, pingSCC[1].Name)
	}
	if order["shard.step"] > order["shard.run"] {
		t.Errorf("callee shard.step emitted after caller shard.run (not reverse-topological)")
	}
}

func nodeNames(g *Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		out = append(out, n.Name)
	}
	return out
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
