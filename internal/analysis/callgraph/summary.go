package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
)

// A Summary is a node's transitive effect summary, computed over the SCC
// condensation (callees first, fixpoint within a component):
//
//   - MutatesParam[i]: the function may write through its i'th parameter
//     (unified indexing: a method's receiver is parameter 0, then the
//     declared parameters). Only externally visible mutation counts —
//     writes through pointers, slice/map elements, or builtin copy/clear/
//     delete — not reassignment of the parameter variable itself.
//   - SendsOn / ClosesOn: channel objects (struct fields, package vars, or
//     variables captured from an enclosing function) the function may send
//     on / close, directly or via callees.
//   - SendsOnParam / ClosesOnParam: same, for channel-typed parameters by
//     unified index.
//
// Effects behind `go` launches inside a callee are included: a caller that
// invokes a function which *starts a goroutine that closes ch* may close
// ch, as far as channel discipline is concerned.
type Summary struct {
	MutatesParam  []bool
	SendsOn       []types.Object
	ClosesOn      []types.Object
	SendsOnParam  []bool
	ClosesOnParam []bool
}

// Sends reports whether the summary includes a send on obj.
func (s *Summary) Sends(obj types.Object) bool { return containsObj(s.SendsOn, obj) }

// Closes reports whether the summary includes a close of obj.
func (s *Summary) Closes(obj types.Object) bool { return containsObj(s.ClosesOn, obj) }

func containsObj(objs []types.Object, obj types.Object) bool {
	for _, o := range objs {
		if o == obj {
			return true
		}
	}
	return false
}

// Params returns a node's parameter objects in unified order (receiver
// first for methods).
func (n *Node) Params(info *types.Info) []types.Object {
	var out []types.Object
	if n.Decl != nil {
		if n.Decl.Recv != nil {
			for _, f := range n.Decl.Recv.List {
				for _, name := range f.Names {
					out = append(out, info.Defs[name])
				}
			}
		}
		for _, f := range n.Decl.Type.Params.List {
			for _, name := range f.Names {
				out = append(out, info.Defs[name])
			}
		}
		return out
	}
	for _, f := range n.Lit.Type.Params.List {
		for _, name := range f.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// CallArgs returns a call site's argument expressions in unified order: for
// a method call through a selector, the receiver expression is prepended.
func CallArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
	}
	return call.Args
}

// ComputeSummaries fills every node's Summary, iterating SCCs callee-first
// and re-running each component to a fixpoint so recursion converges.
func (g *Graph) ComputeSummaries() {
	paramIdx := make([]map[types.Object]int, len(g.Nodes))
	for _, n := range g.Nodes {
		params := n.Params(g.info)
		n.Summary = Summary{
			MutatesParam:  make([]bool, len(params)),
			SendsOnParam:  make([]bool, len(params)),
			ClosesOnParam: make([]bool, len(params)),
		}
		idx := make(map[types.Object]int, len(params))
		for i, p := range params {
			if p != nil {
				idx[p] = i
			}
		}
		paramIdx[n.Index] = idx
		g.directEffects(n, idx)
	}
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if g.propagateCalls(n, paramIdx[n.Index]) {
					changed = true
				}
			}
		}
	}
	for _, n := range g.Nodes {
		sortObjs(n.Summary.SendsOn)
		sortObjs(n.Summary.ClosesOn)
	}
}

func sortObjs(objs []types.Object) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
}

// directEffects records a node's own writes, sends and closes.
func (g *Graph) directEffects(n *Node, paramIdx map[types.Object]int) {
	s := &n.Summary
	recordChan := func(e ast.Expr, onParam []bool, objs *[]types.Object) {
		obj := g.valueObj(e)
		if obj == nil {
			return
		}
		if i, ok := paramIdx[obj]; ok {
			onParam[i] = true
			return
		}
		if isLocalOf(obj, n) {
			return // node-local channel: effects cannot outlive the call
		}
		if !containsObj(*objs, obj) {
			*objs = append(*objs, obj)
		}
	}
	n.Walk(func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.SendStmt:
			recordChan(st.Chan, s.SendsOnParam, &s.SendsOn)
		case *ast.CallExpr:
			if name, ok := builtinName(g.info, st); ok {
				switch name {
				case "close":
					if len(st.Args) == 1 {
						recordChan(st.Args[0], s.ClosesOnParam, &s.ClosesOn)
					}
				case "copy", "clear", "delete":
					if len(st.Args) > 0 {
						g.recordMutation(st.Args[0], n, paramIdx)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				g.recordMutation(lhs, n, paramIdx)
			}
		case *ast.IncDecStmt:
			g.recordMutation(st.X, n, paramIdx)
		}
		return true
	})
}

// recordMutation marks MutatesParam when an lvalue writes *through* a
// parameter: p.f = x, *p = x, p[i] = x — but not p = x, which only rebinds
// the local copy.
func (g *Graph) recordMutation(lhs ast.Expr, n *Node, paramIdx map[types.Object]int) {
	root, through := lvalueRoot(lhs)
	if !through {
		return
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return
	}
	obj := g.valueObj(id)
	if obj == nil {
		return
	}
	if i, ok := paramIdx[obj]; ok && pointerish(obj.Type()) {
		n.Summary.MutatesParam[i] = true
	}
}

// lvalueRoot peels selectors, indexes and derefs off an lvalue and reports
// whether any were peeled (i.e. the write goes through the root rather than
// rebinding it).
func lvalueRoot(e ast.Expr) (root ast.Expr, through bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e, through = x.X, true
		case *ast.IndexExpr:
			e, through = x.X, true
		case *ast.StarExpr:
			e, through = x.X, true
		default:
			return ast.Unparen(e), through
		}
	}
}

// pointerish reports whether writes through a value of type t are visible
// to the caller.
func pointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// isLocalOf reports whether obj is a variable declared inside the node's
// own body (not a field, package var, parameter, or captured variable).
func isLocalOf(obj types.Object, n *Node) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	body := n.Body()
	if body == nil {
		return false
	}
	return obj.Pos() >= body.Pos() && obj.Pos() < body.End()
}

// builtinName reports the name of a builtin call, if the call is one.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// propagateCalls merges callee summaries into n through its call sites,
// returning whether anything new was learned.
func (g *Graph) propagateCalls(n *Node, paramIdx map[types.Object]int) bool {
	s := &n.Summary
	changed := false
	for _, e := range n.Out {
		callee := e.Callee
		cs := &callee.Summary
		args := CallArgs(g.info, e.Site)

		// Field/package/captured-channel effects propagate verbatim;
		// channel effects on callee parameters map through the argument
		// expressions at this site.
		changed = mergeChanEffects(g, n, paramIdx, cs.SendsOn, cs.SendsOnParam, args, &s.SendsOn, s.SendsOnParam) || changed
		changed = mergeChanEffects(g, n, paramIdx, cs.ClosesOn, cs.ClosesOnParam, args, &s.ClosesOn, s.ClosesOnParam) || changed

		// Parameter mutations: an argument that is one of n's own
		// pointerish parameters makes n a mutator of that parameter.
		for i, mutates := range cs.MutatesParam {
			if !mutates || i >= len(args) {
				continue
			}
			obj := g.valueObj(args[i])
			if obj == nil {
				continue
			}
			if j, ok := paramIdx[obj]; ok && pointerish(obj.Type()) && !s.MutatesParam[j] {
				s.MutatesParam[j] = true
				changed = true
			}
		}
	}
	return changed
}

// mergeChanEffects folds one callee channel-effect set into the caller's.
func mergeChanEffects(g *Graph, n *Node, paramIdx map[types.Object]int,
	calleeObjs []types.Object, calleeParams []bool, args []ast.Expr,
	callerObjs *[]types.Object, callerParams []bool) bool {

	changed := false
	add := func(obj types.Object) {
		if obj == nil || isLocalOf(obj, n) {
			return
		}
		if i, ok := paramIdx[obj]; ok {
			if !callerParams[i] {
				callerParams[i] = true
				changed = true
			}
			return
		}
		if !containsObj(*callerObjs, obj) {
			*callerObjs = append(*callerObjs, obj)
			changed = true
		}
	}
	for _, obj := range calleeObjs {
		add(obj)
	}
	for i, hit := range calleeParams {
		if hit && i < len(args) {
			add(g.valueObj(args[i]))
		}
	}
	return changed
}
