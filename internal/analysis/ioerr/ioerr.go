// Package ioerr flags call sites that discard the error from blockdev and
// raid I/O methods.
//
// The paper's recovery and corruption-handling claims (PAPER.md §5) hold
// only if injected device faults propagate to the layer that must react to
// them; a dropped Submit/Flush/ReadBlob error silently turns a failed
// device into a healthy-looking result. Flagged shapes: a call used as a
// bare statement, `go`/`defer` of such a call, and assignments that send
// the error result to the blank identifier.
package ioerr

import (
	"go/ast"
	"go/types"
	"strings"

	"srccache/internal/analysis"
)

// Analyzer implements the ioerr check.
var Analyzer = &analysis.Analyzer{
	Name: "ioerr",
	Doc:  "forbid discarding errors from blockdev/raid Submit/Flush/Read*/Write*/Trim/Corrupt methods",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				check(pass, n.X, "discarded")
			case *ast.GoStmt:
				check(pass, n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				check(pass, n.Call, "discarded by defer")
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && errorResultBlank(pass, n) {
					check(pass, n.Rhs[0], "assigned to _")
				}
			}
			return true
		})
	}
	return nil
}

// errorResultBlank reports whether the assignment's position that receives
// the call's trailing error is the blank identifier.
func errorResultBlank(pass *analysis.Pass, n *ast.AssignStmt) bool {
	if len(n.Lhs) == 0 {
		return false
	}
	id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident)
	return ok && id.Name == "_"
}

// check reports a diagnostic if e is a call to an I/O-contract method whose
// trailing error result is being dropped.
func check(pass *analysis.Pass, e ast.Expr, how string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	fn, recv := ContractCall(pass, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s.%s %s; blockdev/raid I/O errors must be handled (//srclint:allow ioerr to override)",
		recvName(recv), fn.Name(), how)
}

// ContractCall reports whether call invokes an I/O-contract method — a
// Submit/Flush/Trim/Corrupt or Read*/Write* method with a trailing error
// result, defined in (or on a type of) internal/blockdev or internal/raid.
// It returns the method and the receiver type, or nil when the call is
// outside the contract. Shared with the errpath analyzer, which tracks what
// happens to the error after it is bound to a variable.
func ContractCall(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, types.Type) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil, nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || !contractMethod(fn.Name()) {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return nil, nil
	}
	if !definedInContractPackage(pass, fn, s.Recv()) {
		return nil, nil
	}
	return fn, s.Recv()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// contractMethod reports whether the method name falls under the I/O-error
// contract.
func contractMethod(name string) bool {
	switch name {
	case "Submit", "Flush", "Trim", "Corrupt":
		return true
	}
	return strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "Write")
}

// definedInContractPackage reports whether either the method's defining
// package or the receiver's named type's package is a contract package
// (internal/blockdev, internal/raid). Interface calls through
// blockdev.Device match via the method's package even when the dynamic
// implementation lives elsewhere.
func definedInContractPackage(pass *analysis.Pass, fn *types.Func, recv types.Type) bool {
	if fn.Pkg() != nil && analysis.PathMatches(fn.Pkg().Path(), analysis.IOErrPackages) {
		return true
	}
	if n := namedOf(recv); n != nil && n.Obj().Pkg() != nil {
		return analysis.PathMatches(n.Obj().Pkg().Path(), analysis.IOErrPackages)
	}
	return false
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func recvName(t types.Type) string {
	if n := namedOf(t); n != nil {
		return n.Obj().Name()
	}
	return t.String()
}
