// Positive and negative cases for discarding blockdev I/O errors.
package use

import "c/internal/blockdev"

func bad(dev blockdev.Device, c *blockdev.Content) {
	dev.Submit(0, blockdev.Request{})        // want `error from Device\.Submit discarded`
	_, _ = dev.Submit(0, blockdev.Request{}) // want `error from Device\.Submit assigned to _`
	_ = c.WriteTag(1, 2)                     // want `error from Content\.WriteTag assigned to _`
	tag, _ := c.ReadTag(1)                   // want `error from Content\.ReadTag assigned to _`
	_ = tag
	defer dev.Flush(0) // want `error from Device\.Flush discarded by defer`
	go c.Trim(0, 1)    // want `error from Content\.Trim discarded by go statement`
}

func good(dev blockdev.Device, c *blockdev.Content) error {
	if _, err := dev.Submit(0, blockdev.Request{}); err != nil {
		return err
	}
	done, err := dev.Flush(0)
	if err != nil {
		return err
	}
	_ = done
	return c.WriteTag(1, 2)
}

func noErrorResult(dev blockdev.Device) int64 {
	return dev.Capacity()
}

func allowed(c *blockdev.Content) {
	_ = c.WriteTag(1, 2) //srclint:allow ioerr teardown path, device already failed
}
