// Fixture stand-in for the real internal/blockdev package: the analyzer
// matches by package-path suffix, so this minimal copy exercises the same
// matching logic the real tree does.
package blockdev

type Request struct{ Off, Len int64 }

type Device interface {
	Submit(at int64, req Request) (int64, error)
	Flush(at int64) (int64, error)
	Capacity() int64
}

type Content struct{}

func (*Content) WriteTag(page int64, tag uint64) error { return nil }
func (*Content) ReadTag(page int64) (uint64, error)    { return 0, nil }
func (*Content) Trim(page, count int64) error          { return nil }
