// Negative fixture: same method names outside a contract package are not
// the analyzer's business.
package other

type Thing struct{}

func (Thing) Write(p []byte) (int, error) { return 0, nil }
func (Thing) Flush() error                { return nil }

func use(t Thing) {
	t.Write(nil)
	t.Flush()
	_ = t.Flush()
}
