package ioerr_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/ioerr"
)

func TestIOErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ioerr.Analyzer,
		"c/use",   // positive: calls into a contract package
		"c/other", // negative: same method names elsewhere
	)
}
