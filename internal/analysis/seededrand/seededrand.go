// Package seededrand forbids global math/rand state in simulation and
// trace-generation packages.
//
// Randomized components (Zipf workloads, fault injection, trace synthesis)
// must draw from an injected, explicitly seeded *rand.Rand so a run is
// reproducible from its configuration alone. The package-level math/rand
// functions share hidden global state seeded per-process, and seeding a
// source from the wall clock smuggles nondeterminism in through the back
// door; both are flagged. Constructors (rand.New, rand.NewSource,
// rand.NewZipf, ...) stay legal — they are how the injected generator is
// built.
package seededrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"srccache/internal/analysis"
)

// Analyzer implements the seededrand check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand functions and wall-clock seeds in simulation packages",
	Run:  run,
}

// constructors are the package-level math/rand (and v2) functions that
// build generator state rather than draw from the global one.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), analysis.RandPackages) {
		return nil
	}
	// Nested constructors (rand.New(rand.NewSource(...))) would find the
	// same wall-clock seed twice; report each position once.
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isRandPkg(pass, sel.X) {
				return true
			}
			// Only package-level functions matter; rand.Rand, rand.Source
			// and friends resolve to type names.
			if _, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !ok {
				return true
			}
			name := sel.Sel.Name
			if !constructors[name] {
				pass.Reportf(sel.Pos(),
					"rand.%s uses global math/rand state; draw from an injected seeded *rand.Rand (//srclint:allow seededrand to override)",
					name)
				return true
			}
			// Constructor: make sure the seed is not derived from the
			// wall clock (rand.NewSource(time.Now().UnixNano()) et al.).
			if call, ok := seedCall(f, sel); ok {
				if pos, found := wallClockIn(pass, call.Args); found && !reported[pos] {
					reported[pos] = true
					pass.Reportf(pos,
						"rand.%s seed derived from the wall clock; seeds must come from configuration (//srclint:allow seededrand to override)",
						name)
				}
			}
			return true
		})
	}
	return nil
}

// isRandPkg reports whether x is an identifier naming an import of
// math/rand or math/rand/v2.
func isRandPkg(pass *analysis.Pass, x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	p := pkg.Imported().Path()
	return p == "math/rand" || p == "math/rand/v2"
}

// seedCall returns the call expression whose callee is sel, if any.
func seedCall(f *ast.File, sel *ast.SelectorExpr) (*ast.CallExpr, bool) {
	var out *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
			out = call
			return false
		}
		return true
	})
	return out, out != nil
}

// wallClockIn scans the expressions for a use of time.Now.
func wallClockIn(pass *analysis.Pass, exprs []ast.Expr) (pos token.Pos, found bool) {
	var at ast.Node
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if at != nil {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Now" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if ok && pkg.Imported().Path() == "time" {
				at = sel
				return false
			}
			return true
		})
		if at != nil {
			return at.Pos(), true
		}
	}
	return token.NoPos, false
}
