// Positive fixture: the package path ends in internal/flash, one of the
// packages whose randomness must come from injected seeded generators.
package flash

import (
	"math/rand"
	"time"
)

func globalDraws() int {
	rand.Seed(42)       // want `rand\.Seed uses global math/rand state`
	n := rand.Intn(10)  // want `rand\.Intn uses global math/rand state`
	f := rand.Float64() // want `rand\.Float64 uses global math/rand state`
	_ = f
	return n
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seed derived from the wall clock`
}

// Injected construction is the sanctioned pattern.
func injected(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func drawsFromInjected(rng *rand.Rand) int {
	return rng.Intn(10) // method on *rand.Rand, not global state
}

func allowed() int {
	return rand.Intn(3) //srclint:allow seededrand fixture-only escape
}
