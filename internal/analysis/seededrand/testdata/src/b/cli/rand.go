// Negative fixture: packages outside the simulation/trace list may use
// global math/rand.
package cli

import "math/rand"

func Jitter() int { return rand.Intn(100) }
