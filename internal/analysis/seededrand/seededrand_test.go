package seededrand_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), seededrand.Analyzer,
		"b/internal/flash", // positive: gated package
		"b/cli",            // negative: outside the list
	)
}
