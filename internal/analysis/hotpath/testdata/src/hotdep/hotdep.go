// Package hotdep exports one hot-unsafe function (Sum iterates a map) and
// one clean one, so the hotpath analyzer's cross-package infection can be
// exercised from the hot fixture.
package hotdep

// Table is a toy lookup structure.
type Table struct{ m map[int]int }

// Sum walks the whole map; its HotUnsafe fact poisons hot callers in
// other packages.
func (t *Table) Sum() int {
	s := 0
	for _, v := range t.m {
		s += v
	}
	return s
}

// Get is hot-clean.
func (t *Table) Get(k int) int { return t.m[k] }
