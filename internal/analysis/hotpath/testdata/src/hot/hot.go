// Package hot exercises the hotpath analyzer: a //srclint:hotpath root,
// transitive infection of local callees and closures, error-path
// exemptions, a //srclint:coldpath boundary, and cross-package infection
// through hotdep's HotUnsafe fact.
package hot

import (
	"fmt"

	"hotdep"
)

type header struct{ size int }

type cache struct {
	t    *hotdep.Table
	buf  []byte
	tags map[string]int
}

// submit is the hot root.
//
//srclint:hotpath
func (c *cache) submit(n int) error {
	c.step(n)
	if err := c.store(n); err != nil {
		return fmt.Errorf("submit %d: %w", n, err) // exempt: trailing error operand
	}
	return nil
}

// step is infected through the local callgraph.
func (c *cache) step(n int) {
	h := &header{size: n} // want `composite literal escapes to the heap`
	_ = h
	ids := []int{n, n + 1} // want `slice composite literal allocates`
	_ = ids
	for k := range c.tags { // want `iterates a map`
		_ = k
	}
	_ = c.t.Sum() // want `call to hotdep.Table.Sum on the hot path .root cache.submit.: iterates a map`
	_ = c.t.Get(n)
	if len(c.buf) > 1024 {
		c.reclaim() // fine: reclaim is a declared coldpath boundary
	}
}

func (c *cache) store(n int) error {
	for i := 0; i < n; i++ {
		defer c.flush() // want `defer inside a loop`
	}
	fmt.Printf("storing %d\n", n) // want `calls fmt.Printf`
	if err := c.checkFull(); err != nil {
		msg := fmt.Sprintf("store full: %v", err) // exempt: error-guarded branch
		_ = msg
		return err
	}
	return nil
}

func (c *cache) flush() {}

func (c *cache) checkFull() error { return nil }

// reclaim is a declared slow path: nothing below it is reported even
// though it allocates freely.
//
//srclint:coldpath amortized reclamation, runs off the request path
func (c *cache) reclaim() {
	junk := map[string]int{"a": 1}
	for k := range junk {
		_ = k
	}
}

// apply shows closure infection: the literal body is on the hot path.
//
//srclint:hotpath
func (c *cache) apply() {
	fn := func() {
		pair := []int{1, 2} // want `slice composite literal allocates`
		_ = pair
	}
	fn()
}

// unreached is never called from a hot root: allocating is fine here.
func (c *cache) unreached() {
	everything := []string{"allocates"}
	_ = everything
}
