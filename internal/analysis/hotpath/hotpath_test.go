package hotpath_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpath.Analyzer, "hot")
}

// TestNoRoots: a package with no //srclint:hotpath annotation reports
// nothing, whatever it allocates.
func TestNoRoots(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpath.Analyzer, "hotdep")
}
