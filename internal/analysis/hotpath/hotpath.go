// Package hotpath enforces DESIGN.md §8 rule 13: functions annotated
// //srclint:hotpath — the engine shard's run loop and the src.Cache
// read/write path — and everything they transitively call must stay free
// of the allocation and reflection patterns that wreck p99 latency:
//
//   - slice and map composite literals, and address-of composite literals
//     (heap escapes);
//   - calls into fmt and reflect;
//   - ranging over a map (randomized order, hash-walk cost);
//   - defer inside a loop (defers accumulate until function exit).
//
// Error paths are exempt: code under an `err != nil`-style guard, the
// trailing error operand of a return, and functions annotated
// //srclint:coldpath <reason> (declared slow paths like GC and repair) are
// not part of the hot path even when called from it. Goroutine launches
// (`go f()`) leave the hot path by definition.
//
// Infection crosses package boundaries through the modular facts layer: a
// package exports a HotUnsafe summary for each function that (transitively,
// through its own callees) violates the rules, and a hot caller in another
// package reports any call to a HotUnsafe function.
package hotpath

import (
	"go/ast"
	"strings"

	"srccache/internal/analysis"
	"srccache/internal/analysis/callgraph"
	"srccache/internal/analysis/modfacts"
)

// Analyzer is the hotpath check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "//srclint:hotpath functions transitively forbid heap-escaping literals, fmt/reflect, map iteration, and defer-in-loop",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	files := nonTestFiles(pass)
	if !hasHotRoot(files) {
		return nil // no roots, nothing can be hot — skip the callgraph cost
	}
	g := callgraph.Build(pass.Fset, files, pass.TypesInfo)

	// BFS from the annotated roots over the local callgraph. `rootOf`
	// remembers which annotation made each node hot, for diagnostics.
	rootOf := make(map[*callgraph.Node]string)
	var queue []*callgraph.Node
	for _, n := range g.Nodes {
		if n.Decl != nil {
			if _, ok := analysis.Directive(n.Decl.Doc, "hotpath"); ok {
				rootOf[n] = n.Name
				queue = append(queue, n)
			}
		}
	}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		root := rootOf[n]

		viols, calls := modfacts.HotScan(pass.TypesInfo, n)
		for _, v := range viols {
			pass.Reportf(v.Pos, "%s on the hot path (root %s); move it off the //srclint:hotpath path or annotate a //srclint:coldpath boundary", v.What, root)
		}
		for _, call := range calls {
			// Local flow-resolved callees join the hot set.
			for _, callee := range g.Callees(call) {
				if modfacts.ColdpathNode(callee) {
					continue
				}
				if _, seen := rootOf[callee]; !seen {
					rootOf[callee] = root
					queue = append(queue, callee)
				}
			}
			// Cross-package callees are judged by their HotUnsafe fact.
			if why, name := crossUnsafe(pass, call); why != "" {
				pass.Reportf(call.Pos(), "call to %s on the hot path (root %s): %s", name, root, why)
			}
		}
	}
	return nil
}

// crossUnsafe reports a cross-package callee's HotUnsafe description (and a
// display name), or "" when the callee is local, fact-free, or hot-clean.
func crossUnsafe(pass *analysis.Pass, call *ast.CallExpr) (why, name string) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return "", ""
	}
	fname := modfacts.FuncName(fn)
	ff := pass.ImportedFacts(analysis.NormalizePkgPath(fn.Pkg().Path())).Func(fname)
	if ff == nil || ff.Coldpath || ff.HotUnsafe == "" {
		return "", ""
	}
	return ff.HotUnsafe, fn.Pkg().Name() + "." + fname
}

func hasHotRoot(files []*ast.File) bool {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if _, ok := analysis.Directive(fd.Doc, "hotpath"); ok {
					return true
				}
			}
		}
	}
	return false
}

func nonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}
