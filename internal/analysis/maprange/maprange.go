// Package maprange flags map iterations whose order can leak into output.
//
// Go randomizes map iteration order per run, so a `for k := range m` loop
// that appends to a slice which outlives the loop, or that writes to an
// io.Writer, produces output whose order varies run to run — the exact
// hazard that would break the byte-identical experiment tables. Iterations
// that merely aggregate (sum into a scalar, fill another map) are order
// insensitive and stay legal, as does the canonical fix: collect the keys
// (or values) into a slice and sort it before use. A loop whose only
// escaping appends feed slices that are later passed to a sort function is
// therefore not flagged.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"srccache/internal/analysis"
)

// Analyzer implements the maprange check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag range-over-map loops whose iteration order can reach output (append to escaping slice, io.Writer writes) unless sorted",
	Run:  run,
}

// ioWriter is a structural copy of io.Writer, so implementation checks do
// not depend on having the real io package's type object at hand (fixture
// packages in tests may not import io).
var ioWriter = func() *types.Interface {
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type())),
		false)
	i := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig),
	}, nil)
	i.Complete()
	return i
}()

var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		sorted := sortedObjects(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkLoop(pass, rng, sorted)
			return true
		})
	}
	return nil
}

// checkLoop inspects one range-over-map loop for ordered sinks.
func checkLoop(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	var appendTargets []types.Object
	trackable := true
	var writerPos token.Pos

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isAppendCall(pass, rhs) || i >= len(n.Lhs) {
					continue
				}
				obj := targetObject(pass, n.Lhs[i])
				if obj == nil {
					trackable = false // can't prove it gets sorted
					continue
				}
				if declaredWithin(obj, rng.Body) {
					continue // loop-local scratch, dies with the iteration
				}
				appendTargets = append(appendTargets, obj)
			}
		case *ast.CallExpr:
			if writerPos == token.NoPos && isWriterCall(pass, n) {
				writerPos = n.Pos()
			}
		}
		return true
	})

	switch {
	case writerPos != token.NoPos:
		pass.Reportf(rng.For,
			"range over map writes to an io.Writer in map order; iterate sorted keys instead (//srclint:allow maprange to override)")
	case !trackable:
		pass.Reportf(rng.For,
			"range over map appends in map order to a slice that outlives the loop; sort before use (//srclint:allow maprange to override)")
	default:
		for _, obj := range appendTargets {
			if !sorted[obj] {
				pass.Reportf(rng.For,
					"range over map appends to %q in map order and %q is never sorted; collect and sort keys first (//srclint:allow maprange to override)",
					obj.Name(), obj.Name())
				return
			}
		}
	}
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// targetObject resolves the assignment target to a variable object:
// a plain identifier or a field selector. Index expressions and other
// shapes are not tracked.
func targetObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(e.Sel)
	}
	return nil
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// isWriterCall reports whether call writes to an io.Writer: either a
// fmt.Fprint* call or a Write/WriteString/WriteByte/WriteRune method on a
// value implementing io.Writer.
func isWriterCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			return pkg.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint")
		}
	}
	if !writeMethods[sel.Sel.Name] {
		return false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if types.Implements(recv, ioWriter) {
		return true
	}
	if _, isPtr := recv.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(recv), ioWriter)
	}
	return false
}

// sortedObjects collects the variable objects that are passed to a sort
// function anywhere in the file. Conversions wrapping the argument
// (sort.Sort(byAge(people))) are looked through.
func sortedObjects(pass *analysis.Pass, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		names := sortFuncs[pkg.Imported().Path()]
		if names == nil || !names[sel.Sel.Name] {
			return true
		}
		arg := call.Args[0]
		for {
			if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
				arg = inner.Args[0] // conversion like byAge(people)
				continue
			}
			break
		}
		if obj := targetObject(pass, arg); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}
