package maprange_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/maprange"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maprange.Analyzer, "m")
}
