// Fixture for the maprange check: positive cases leak map order into a
// slice or writer; negative cases aggregate, stay loop-local, or sort
// before use.
package m

import (
	"fmt"
	"io"
	"sort"
)

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to "keys" in map order`
		keys = append(keys, k)
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writerInLoop(w io.Writer, m map[string]int) {
	for k, v := range m { // want `writes to an io\.Writer in map order`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

type sink struct{}

func (sink) Write(p []byte) (int, error) { return len(p), nil }

func methodWrite(s sink, m map[string]int) {
	for k := range m { // want `writes to an io\.Writer in map order`
		s.Write([]byte(k)) //srclint:allow ioerr fixture sink, not a device
	}
}

func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func intoAnotherMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func loopLocalScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

type rec struct {
	k string
	v int
}

func sortedStructs(m map[string]int) []rec {
	var out []rec
	for k, v := range m {
		out = append(out, rec{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

type collector struct{ keys []string }

func (c *collector) sortedField(m map[string]int) {
	for k := range m {
		c.keys = append(c.keys, k)
	}
	sort.Strings(c.keys)
}

type badCollector struct{ keys []string }

func (c *badCollector) unsortedField(m map[string]int) {
	for k := range m { // want `appends to "keys" in map order`
		c.keys = append(c.keys, k)
	}
}

func allowed(m map[string]int) []string {
	var keys []string
	//srclint:allow maprange stable enough for debug output
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
