package lockheld_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/lockheld"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockheld.Analyzer, "l/use")
}
