// Package use exercises the lockheld analyzer.
package use

import (
	"sync"

	"l/internal/blockdev"
	"l/internal/netblock"
)

type store struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	dev *blockdev.Dev
}

// lockAcrossIO is the bug shape: the mutex is held across a device call.
func (s *store) lockAcrossIO() error {
	s.mu.Lock()
	err := s.dev.Submit(0, 1) // want `blockdev.Submit called while mu may be held`
	s.mu.Unlock()
	return err
}

// deferUnlock is the idiomatic pattern the check must NOT flag: the defer
// discharges the lock-across-I/O obligation (matching the repo's
// netblock.roundTrip, where the lock deliberately serializes the transport).
func (s *store) deferUnlock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dev.Submit(0, 1)
}

// unlockBeforeIO releases before the call: clean.
func (s *store) unlockBeforeIO(p []byte) error {
	s.mu.Lock()
	off := int64(len(p))
	s.mu.Unlock()
	return s.dev.ReadAt(p, off)
}

// rlockAcross holds a read lock across I/O: same problem.
func (s *store) rlockAcross(p []byte) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return nil
}

// branchLeak unlocks on one path only; the I/O after the if is reachable
// with the lock still held (may-analysis).
func (s *store) branchLeak(fast bool) error {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	}
	err := s.dev.Flush() // want `blockdev.Flush called while mu may be held`
	if fast {
		return err
	}
	s.mu.Unlock()
	return err
}

// dialUnderLock holds the lock across a netblock dial.
func (s *store) dialUnderLock(addr string) (*netblock.Conn, error) {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return netblock.Dial(addr) // want `netblock.Dial called while mu may be held`
}

// twoLocks holds both mutexes; the message names them deterministically.
func (s *store) twoLocks() error {
	s.mu.Lock()
	s.rw.Lock()
	err := s.dev.Flush() // want `blockdev.Flush called while mu, rw may be held`
	s.rw.Unlock()
	s.mu.Unlock()
	return err
}

// nonIOUnderLock calls a contract-package method that is not I/O: clean.
func (s *store) nonIOUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dev.Resize(4096)
}

// allowedHold documents a deliberate exception via suppression.
func (s *store) allowedHold() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//srclint:allow lockheld single-threaded setup path, lock is uncontended
	return s.dev.Flush()
}

// litOwnLock shows a function literal analyzed on its own: its lock does not
// leak into the enclosing function, and vice versa.
func (s *store) litOwnLock() error {
	flush := func() error {
		s.mu.Lock()
		err := s.dev.Flush() // want `blockdev.Flush called while mu may be held`
		s.mu.Unlock()
		return err
	}
	return flush()
}
