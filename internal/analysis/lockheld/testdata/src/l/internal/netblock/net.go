// Package netblock is a fixture stand-in for the network block transport.
package netblock

type Conn struct{}

func Dial(addr string) (*Conn, error)       { return nil, nil }
func (c *Conn) WriteRequest(b []byte) error { return nil }
