// Package lockheld flags calls into blockdev/raid/netblock I/O made while a
// sync.Mutex or sync.RWMutex is (possibly) held.
//
// The simulated device layers complete I/O synchronously today, but the
// netblock transport already blocks on a real socket, and the paper's
// array-of-commodity-SSDs premise is that device latency is the dominant
// cost. Holding a mutex across a Submit/Read/Write call serializes every
// other goroutine behind one device's latency — and against netblock it can
// deadlock outright when the response path needs the same lock.
//
// The analysis is a may-analysis over the CFG: `mu.Lock()`/`mu.RLock()`
// generates a held-fact for that mutex variable, and `mu.Unlock()`/
// `mu.RUnlock()` — whether called directly or deferred — kills it. A call
// whose callee is defined in internal/blockdev, internal/raid or
// internal/netblock and looks like I/O (Submit, Flush, Trim, Corrupt, Dial,
// Listen, or a Read*/Write*/Serve* method) is reported when any held-fact
// may be live.
package lockheld

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"srccache/internal/analysis"
	"srccache/internal/analysis/cfg"
)

// Analyzer implements the lockheld check.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "forbid holding a sync.Mutex/RWMutex across blockdev/raid/netblock I/O calls",
	Run:  run,
}

// IOPackages lists the package-path suffixes whose calls count as I/O for
// the purposes of this check.
var IOPackages = []string{
	"internal/blockdev",
	"internal/raid",
	"internal/netblock",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Each function, including nested literals, gets its own CFG;
			// the transfer functions below don't descend into literals.
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Function literals are analyzed on their own (they run at another
	// time); don't descend into them from the enclosing body's transfer.
	inspectShallow := func(n ast.Node, fn func(ast.Node) bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && m != n {
				return false
			}
			return fn(m)
		})
	}

	g := cfg.New(body)
	problem := cfg.Problem{
		Must: false,
		Transfer: func(n ast.Node, facts cfg.Facts) {
			inspectShallow(n, func(m ast.Node) bool {
				// defer mu.Unlock() discharges the obligation for the rest
				// of the function, same as an immediate unlock.
				if d, ok := m.(*ast.DeferStmt); ok {
					if obj, locking := mutexOp(pass, d.Call); obj != nil && !locking {
						delete(facts, obj)
					}
					return true
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if obj, locking := mutexOp(pass, call); obj != nil {
					if locking {
						facts[obj] = true
					} else {
						delete(facts, obj)
					}
				}
				return true
			})
		},
	}
	ins := cfg.Solve(g, problem)

	cfg.Visit(g, problem, ins, func(n ast.Node, before cfg.Facts) {
		if len(before) == 0 {
			return
		}
		// The facts at the node don't yet include its own Lock calls — a
		// statement that both locks and does I/O is caught only if a lock
		// was already held, which is the honest reading of "across".
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || !ioCall(fn) {
				return true
			}
			// One report per call site; name the held mutexes in a
			// deterministic order (Facts is a map).
			var held []string
			for k := range before {
				if mu, ok := k.(types.Object); ok {
					held = append(held, mu.Name())
				}
			}
			if len(held) > 0 {
				sort.Strings(held)
				pass.Reportf(call.Pos(),
					"%s.%s called while %s may be held; do not hold locks across blockdev/raid/netblock I/O (//srclint:allow lockheld to override)",
					pkgBase(fn), fn.Name(), strings.Join(held, ", "))
			}
			return true
		})
	})
}

// mutexOp reports whether the call is a Lock/RLock (locking=true) or
// Unlock/RUnlock (locking=false) on a sync.Mutex or sync.RWMutex, returning
// the mutex variable's object. The receiver must resolve to a named object:
// an identifier, or a field selection whose field object identifies the
// mutex (c.mu resolves to the field `mu`, so every method of c shares the
// fact key).
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	var locking bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
		locking = false
	default:
		return nil, false
	}
	obj := receiverObject(pass, sel.X)
	if obj == nil || !isMutexType(obj.Type()) {
		return nil, false
	}
	return obj, locking
}

// receiverObject resolves the mutex expression to a stable object: plain
// identifiers via Uses/Defs, field selections via the field's object.
func receiverObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		if s := pass.TypesInfo.Selections[e]; s != nil {
			return s.Obj()
		}
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.UnaryExpr:
		return receiverObject(pass, e.X)
	}
	return nil
}

// isMutexType reports whether t (possibly behind a pointer) is sync.Mutex
// or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ioCall reports whether fn is an I/O entry point of one of the device or
// transport packages.
func ioCall(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || !analysis.PathMatches(pkg.Path(), IOPackages) {
		return false
	}
	switch fn.Name() {
	case "Submit", "Flush", "Trim", "Corrupt", "Dial", "Listen":
		return true
	}
	return strings.HasPrefix(fn.Name(), "Read") ||
		strings.HasPrefix(fn.Name(), "Write") ||
		strings.HasPrefix(fn.Name(), "Serve")
}

func pkgBase(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name()
	}
	return "?"
}
