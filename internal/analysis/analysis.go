// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary, just large enough to host this
// repository's determinism and I/O-error lints (cmd/srclint).
//
// The real x/tools module is deliberately not imported: the build must work
// from a bare Go toolchain with an empty module cache. Analyzers written
// against this package follow the upstream shape (Analyzer with a Run
// function over a Pass) so they could be ported to x/tools mechanically if
// the dependency ever becomes available.
//
// Suppression: a diagnostic is suppressed when the offending line, or the
// line directly above it, carries a
//
//	//srclint:allow <name>[,<name>...] [reason]
//
// comment naming the analyzer. Suppressions are deliberate, reviewable
// escape hatches (e.g. the progress timers that are allowed to read the
// wall clock).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one named check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //srclint:allow directives. It must be a lower-case identifier.
	Name string

	// Doc is a one-line description shown by srclint's usage text.
	Doc string

	// Run applies the analyzer to a package. Diagnostics are delivered
	// through Pass.Report; the error return is for operational failures
	// only (it aborts the whole run).
	Run func(*Pass) error
}

// A Pass is one application of one analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills it in.
	Report func(Diagnostic)

	// allow maps analyzer name -> file:line positions carrying an
	// //srclint:allow directive, built lazily from Files.
	allow map[string]map[fileLine]bool
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

type fileLine struct {
	file string
	line int
}

// Reportf reports a formatted diagnostic at pos unless an
// //srclint:allow directive for this analyzer covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(p.Analyzer.Name, pos) {
		return
	}
	p.Report(Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a //srclint:allow directive for the named check
// covers pos: the directive sits either on the same line (trailing comment)
// or on the line directly above the offending one.
func (p *Pass) Allowed(name string, pos token.Pos) bool {
	if p.allow == nil {
		p.allow = parseAllowDirectives(p.Fset, p.Files)
	}
	lines := p.allow[name]
	if lines == nil {
		return false
	}
	posn := p.Fset.Position(pos)
	return lines[fileLine{posn.Filename, posn.Line}] ||
		lines[fileLine{posn.Filename, posn.Line - 1}]
}

const allowPrefix = "//srclint:allow"

func parseAllowDirectives(fset *token.FileSet, files []*ast.File) map[string]map[fileLine]bool {
	out := make(map[string]map[fileLine]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				posn := fset.Position(c.Slash)
				at := fileLine{posn.Filename, posn.Line}
				// Directive payload: comma/space separated names;
				// anything after the names is free-form reason text.
				for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					if !isCheckName(name) {
						break // reached the reason text
					}
					if out[name] == nil {
						out[name] = make(map[fileLine]bool)
					}
					out[name][at] = true
				}
			}
		}
	}
	return out
}

func isCheckName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// NormalizePkgPath maps the package-path spellings produced by the go
// command's vet protocol back to the underlying package path:
// "p [p.test]" (test variant), "p.test" (generated test main) and
// "p_test" (external test package) all normalize to "p", so a package's
// tests inherit its contract.
func NormalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// PathMatches reports whether the (normalized) package path equals one of
// the target paths or ends in "/"+target. Matching by suffix keeps the
// analyzers testable against fixture packages whose import paths carry a
// testdata prefix.
func PathMatches(path string, targets []string) bool {
	path = NormalizePkgPath(path)
	for _, t := range targets {
		if path == t || strings.HasSuffix(path, "/"+t) {
			return true
		}
	}
	return false
}

// SimPackages lists the package-path suffixes bound by the determinism
// contract (DESIGN.md): simulation results must be a pure function of the
// configuration and seeds, so these packages may not consult the wall clock
// and may not draw from global math/rand state.
var SimPackages = []string{
	"internal/src",
	"internal/raid",
	"internal/flash",
	"internal/blockdev",
	"internal/experiments",
	"internal/bcachesim",
	"internal/flashcachesim",
	"internal/ripqsim",
	"internal/workload",
	"internal/ssd",
	"internal/hdd",
	"internal/chaos",
}

// RandPackages extends SimPackages with the packages that generate
// workloads and traces: they may not use global math/rand either, but they
// legitimately never deal in wall-clock time stamps of their own.
var RandPackages = append([]string{"internal/trace"}, SimPackages...)

// IOErrPackages lists the package-path suffixes whose Read/Write/Flush/
// Trim/Submit errors must never be discarded: dropping a blockdev or raid
// error silently converts an injected device fault into a wrong result.
var IOErrPackages = []string{
	"internal/blockdev",
	"internal/raid",
}
