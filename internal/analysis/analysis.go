// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary, just large enough to host this
// repository's determinism and I/O-error lints (cmd/srclint).
//
// The real x/tools module is deliberately not imported: the build must work
// from a bare Go toolchain with an empty module cache. Analyzers written
// against this package follow the upstream shape (Analyzer with a Run
// function over a Pass) so they could be ported to x/tools mechanically if
// the dependency ever becomes available.
//
// Suppression: a diagnostic is suppressed when the offending line, or the
// line directly above it, carries a
//
//	//srclint:allow <name>[,<name>...] [reason]
//
// comment naming the analyzer. Suppressions are deliberate, reviewable
// escape hatches (e.g. the progress timers that are allowed to read the
// wall clock).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one named check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //srclint:allow directives. It must be a lower-case identifier.
	Name string

	// Doc is a one-line description shown by srclint's usage text.
	Doc string

	// Run applies the analyzer to a package. Diagnostics are delivered
	// through Pass.Report; the error return is for operational failures
	// only (it aborts the whole run).
	Run func(*Pass) error
}

// A Pass is one application of one analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills it in.
	Report func(Diagnostic)

	// Dirs holds the package's parsed //srclint:allow directives. The
	// driver shares one Directives across every analyzer's pass so that
	// suppressions which never fire can be reported as stale; when nil it
	// is built lazily from Files (analysistest and direct Pass use).
	Dirs *Directives

	// OwnFacts is this package's computed fact summary (modfacts.Compute);
	// nil when the driver did not compute facts, in which case analyzers
	// that need them compute their own.
	OwnFacts *PackageFacts

	// DepFacts resolves an import path to that dependency's facts, nil
	// when unavailable (standard library, facts-free drivers). The driver
	// memoizes behind this so analyzers can call it freely.
	DepFacts func(path string) *PackageFacts
}

// ImportedFacts is the nil-safe way to ask for a dependency's facts.
func (p *Pass) ImportedFacts(path string) *PackageFacts {
	if p.DepFacts == nil {
		return nil
	}
	return p.DepFacts(NormalizePkgPath(path))
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

type fileLine struct {
	file string
	line int
}

// Reportf reports a formatted diagnostic at pos unless an
// //srclint:allow directive for this analyzer covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(p.Analyzer.Name, pos) {
		return
	}
	p.Report(Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a //srclint:allow directive for the named check
// covers pos: the directive sits either on the same line (trailing comment)
// or on the line directly above the offending one. A directive that covers
// a diagnostic is marked used; the driver reports the ones that never fire
// as stale (check name "staleallow").
func (p *Pass) Allowed(name string, pos token.Pos) bool {
	if p.Dirs == nil {
		p.Dirs = ParseDirectives(p.Fset, p.Files)
	}
	return p.Dirs.Covers(name, p.Fset.Position(pos))
}

const allowPrefix = "//srclint:allow"

// An allowEntry is one (directive, check name) pair: a directive naming
// three checks contributes three entries, each tracked for staleness on its
// own.
type allowEntry struct {
	name string
	at   fileLine
	pos  token.Pos
	used bool
}

// Directives is the parsed set of a package's //srclint:allow comments,
// with per-entry usage tracking. One Directives is shared across every
// analyzer applied to the package.
type Directives struct {
	entries []*allowEntry
	// byName indexes entries by check name and directive position.
	byName map[string]map[fileLine]*allowEntry
}

// ParseDirectives collects the //srclint:allow directives of a package's
// files. The directive payload is one comma-separated list of check names
// (no spaces) followed by free-form reason text: the name list ends at the
// first whitespace, so reason words can never be mistaken for check names.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byName: make(map[string]map[fileLine]*allowEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				posn := fset.Position(c.Slash)
				at := fileLine{posn.Filename, posn.Line}
				nameList, _, _ := strings.Cut(strings.TrimLeft(rest, " \t"), " ")
				nameList, _, _ = strings.Cut(nameList, "\t")
				for _, name := range strings.Split(nameList, ",") {
					if !isCheckName(name) {
						continue // stray comma or malformed name
					}
					e := &allowEntry{name: name, at: at, pos: c.Slash}
					d.entries = append(d.entries, e)
					if d.byName[name] == nil {
						d.byName[name] = make(map[fileLine]*allowEntry)
					}
					d.byName[name][at] = e
				}
			}
		}
	}
	return d
}

// Covers reports whether a directive for the named check covers a
// diagnostic at posn (same line or the line directly above), marking any
// matching directive entry as used.
func (d *Directives) Covers(name string, posn token.Position) bool {
	lines := d.byName[name]
	if lines == nil {
		return false
	}
	covered := false
	if e := lines[fileLine{posn.Filename, posn.Line}]; e != nil {
		e.used = true
		covered = true
	}
	if e := lines[fileLine{posn.Filename, posn.Line - 1}]; e != nil {
		e.used = true
		covered = true
	}
	return covered
}

// Stale returns one diagnostic per directive entry that suppressed no
// diagnostic in this package (including entries naming a check that does
// not exist), so suppressions cannot rot. Stale-allow findings are not
// themselves suppressible. skip, when non-nil, exempts entries whose
// check was deliberately not run this invocation (-checks/-exclude
// subsets): a run that never gave a check the chance to fire cannot prove
// its suppressions stale.
func (d *Directives) Stale(skip func(name string) bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range d.entries {
		if e.used {
			continue
		}
		if skip != nil && skip(e.name) {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      e.pos,
			Category: "staleallow",
			Message: fmt.Sprintf(
				"//srclint:allow %s suppresses no diagnostic in this package; delete the stale directive (or fix its check name)",
				e.name),
		})
	}
	return out
}

func isCheckName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// Directive scans a comment group for a "//srclint:<name>" marker and
// returns the text following the marker (trimmed), e.g. the owner list of
// an //srclint:owns directive. The marker matches exactly: //srclint:owns
// does not match name "own".
func Directive(cg *ast.CommentGroup, name string) (args string, ok bool) {
	if cg == nil {
		return "", false
	}
	prefix := "//srclint:" + name
	for _, c := range cg.List {
		rest, found := strings.CutPrefix(c.Text, prefix)
		if !found {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // longer marker, e.g. //srclint:ownsomething
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// FieldDirective scans a struct field's doc comment and trailing line
// comment for a "//srclint:<name>" marker (the annotation grammar of the
// confined/chandisc analyzers, DESIGN.md §8).
func FieldDirective(f *ast.Field, name string) (args string, ok bool) {
	if args, ok = Directive(f.Doc, name); ok {
		return args, true
	}
	return Directive(f.Comment, name)
}

// Callee resolves the function or method a call expression invokes: method
// values (including interface methods) via info.Selections, plain and
// package-qualified calls via info.Uses. It returns nil for calls through
// function-typed variables, builtins, and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// NormalizePkgPath maps the package-path spellings produced by the go
// command's vet protocol back to the underlying package path:
// "p [p.test]" (test variant), "p.test" (generated test main) and
// "p_test" (external test package) all normalize to "p", so a package's
// tests inherit its contract.
func NormalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// PathMatches reports whether the (normalized) package path equals one of
// the target paths or ends in "/"+target. Matching by suffix keeps the
// analyzers testable against fixture packages whose import paths carry a
// testdata prefix.
func PathMatches(path string, targets []string) bool {
	path = NormalizePkgPath(path)
	for _, t := range targets {
		if path == t || strings.HasSuffix(path, "/"+t) {
			return true
		}
	}
	return false
}

// SimPackages lists the package-path suffixes bound by the determinism
// contract (DESIGN.md): simulation results must be a pure function of the
// configuration and seeds, so these packages may not consult the wall clock
// and may not draw from global math/rand state.
var SimPackages = []string{
	"internal/src",
	"internal/raid",
	"internal/flash",
	"internal/blockdev",
	"internal/experiments",
	"internal/bcachesim",
	"internal/flashcachesim",
	"internal/ripqsim",
	"internal/workload",
	"internal/ssd",
	"internal/hdd",
	"internal/chaos",
	"internal/torture",
	"internal/stats",
	"internal/engine",
	// The cluster layer's ring, nodes, and churn harness are vtime-pure;
	// the suffix match deliberately does not bind internal/cluster/fleet,
	// the wallclock real-TCP subpackage.
	"internal/cluster",
}

// ClusterPackages lists the package-path suffixes bound by the routing
// protocol contract (DESIGN.md §8 rule 11): inside them, any call that can
// surface a stale-epoch contract error must reach a table-refetch/retry
// handler. cmd/ and examples/ consume the fleet's already-handled surface,
// so they stay out of scope.
var ClusterPackages = []string{
	"internal/cluster",
	"internal/cluster/fleet",
	"internal/cluster/supervisor",
}

// RandPackages extends SimPackages with the packages that generate
// workloads and traces: they may not use global math/rand either, but they
// legitimately never deal in wall-clock time stamps of their own.
var RandPackages = append([]string{"internal/trace"}, SimPackages...)

// IOErrPackages lists the package-path suffixes whose Read/Write/Flush/
// Trim/Submit errors must never be discarded: dropping a blockdev or raid
// error silently converts an injected device fault into a wrong result.
var IOErrPackages = []string{
	"internal/blockdev",
	"internal/raid",
}
