package ssd

import (
	"errors"
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// testConfig is a small, fast SSD: 64 MiB capacity, 4 MiB erase groups,
// 64 KiB blocks.
func testConfig() Config {
	return Config{
		Name:           "test",
		Capacity:       64 << 20,
		EraseGroupSize: 4 << 20,
		PagesPerBlock:  16,
		Parallelism:    4,
		SpareFactor:    0.25,
	}
}

func newTestSSD(t *testing.T, cfg Config) *SSD {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fill writes the whole device sequentially in chunk-sized requests,
// starting at time at, and returns the time the last write was acknowledged.
func fill(t *testing.T, d *SSD, chunk int64, at vtime.Time) vtime.Time {
	t.Helper()
	for off := int64(0); off < d.Capacity(); off += chunk {
		var err error
		at, err = d.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: off, Len: chunk})
		if err != nil {
			t.Fatalf("fill write at %d: %v", off, err)
		}
	}
	return at
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero capacity", func(c *Config) { c.Capacity = 0 }},
		{"negative spare", func(c *Config) { c.SpareFactor = -0.1 }},
		{"spare >= 1", func(c *Config) { c.SpareFactor = 1.0 }},
		{"erase group not block multiple", func(c *Config) { c.EraseGroupSize = 100 }},
		{"unaligned capacity", func(c *Config) { c.Capacity = 4097 }},
		{"bad block frac", func(c *Config) { c.BadBlockFrac = 0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("New accepted invalid config")
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := (Config{Capacity: 1 << 30}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.EraseGroupSize != 256<<20 {
		t.Fatalf("default erase group = %d", cfg.EraseGroupSize)
	}
	if cfg.Cell != MLC || cfg.EnduranceCycles != 3000 {
		t.Fatalf("default cell %v endurance %d", cfg.Cell, cfg.EnduranceCycles)
	}
	if cfg.SustainedProgramRate() <= 0 {
		t.Fatal("sustained rate not positive")
	}
}

func TestPresetsDiffer(t *testing.T) {
	mlc := SATAMLCConfig("a", 1<<30)
	tlc := SATATLCConfig("b", 1<<30)
	nvme := NVMeMLCConfig("c", 1<<30)
	if !(tlc.ProgramLatency > mlc.ProgramLatency) {
		t.Fatal("TLC should program slower than MLC")
	}
	if !(tlc.EnduranceCycles < mlc.EnduranceCycles) {
		t.Fatal("TLC should endure fewer cycles")
	}
	if !(nvme.LinkBandwidth > 4*mlc.LinkBandwidth) {
		t.Fatal("NVMe link should be much faster than SATA")
	}
}

func TestWriteReadRoundTripTiming(t *testing.T) {
	d := newTestSSD(t, testConfig())
	ack, err := d.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if ack <= 0 {
		t.Fatalf("write ack at %v", ack)
	}
	done, err := d.Submit(ack, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if done <= ack {
		t.Fatalf("read done %v not after submit %v", done, ack)
	}
	if d.Stats().WriteOps != 1 || d.Stats().ReadOps != 1 {
		t.Fatalf("stats %+v", d.Stats())
	}
}

func TestReadOfUnmappedPageSkipsFlash(t *testing.T) {
	d := newTestSSD(t, testConfig())
	before := d.FlashStats().PagesRead
	if _, err := d.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	if d.FlashStats().PagesRead != before {
		t.Fatal("unmapped read touched flash")
	}
}

func TestSequentialFillNoGC(t *testing.T) {
	d := newTestSSD(t, testConfig())
	fill(t, d, 1<<20, 0)
	if d.GCPageCopies() != 0 {
		t.Fatalf("sequential fill triggered %d GC copies", d.GCPageCopies())
	}
	if waf := d.WAF(); waf != 1.0 {
		t.Fatalf("sequential fill WAF = %v, want 1.0", waf)
	}
}

func TestAlignedOverwriteKeepsWAFNearOne(t *testing.T) {
	d := newTestSSD(t, testConfig())
	egs := d.Config().EraseGroupSize
	at := fill(t, d, egs, 0)
	// Three more full passes in erase-group-sized requests: victims are
	// always fully invalid, so GC copies stay at zero.
	for i := 0; i < 3; i++ {
		at = fill(t, d, egs, at)
	}
	if waf := d.WAF(); waf > 1.01 {
		t.Fatalf("aligned overwrite WAF = %v, want ~1.0 (gc copies %d)", waf, d.GCPageCopies())
	}
}

func TestRandomOverwriteAmplifies(t *testing.T) {
	d := newTestSSD(t, testConfig())
	at := fill(t, d, 1<<20, 0)
	rng := rand.New(rand.NewSource(1))
	pages := d.Capacity() / blockdev.PageSize
	// Overwrite 2x the device capacity in random 4K writes.
	for i := int64(0); i < 2*pages; i++ {
		off := rng.Int63n(pages) * blockdev.PageSize
		var err error
		at, err = d.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: off, Len: blockdev.PageSize})
		if err != nil {
			t.Fatal(err)
		}
	}
	if waf := d.WAF(); waf < 1.3 {
		t.Fatalf("random overwrite WAF = %v, want noticeably above 1", waf)
	}
	if d.GCPageCopies() == 0 {
		t.Fatal("random overwrite never garbage collected")
	}
}

func TestTrimRestoresFreeSpace(t *testing.T) {
	d := newTestSSD(t, testConfig())
	at := fill(t, d, 1<<20, 0)
	if _, err := d.Submit(at, blockdev.Request{Op: blockdev.OpTrim, Off: 0, Len: d.Capacity()}); err != nil {
		t.Fatal(err)
	}
	// Trim alone does not erase, but subsequent fills reclaim the trimmed
	// groups without copying a single page.
	copiesBefore := d.GCPageCopies()
	at = fill(t, d, 1<<20, at)
	fill(t, d, 1<<20, at)
	if d.GCPageCopies() != copiesBefore {
		t.Fatalf("fill after trim copied %d pages", d.GCPageCopies()-copiesBefore)
	}
	if d.FreeGroups() < 1 {
		t.Fatalf("free groups %d after trim+fill", d.FreeGroups())
	}
}

func TestFlushDrainsWriteCache(t *testing.T) {
	d := newTestSSD(t, testConfig())
	ack, err := d.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := d.Flush(ack)
	if err != nil {
		t.Fatal(err)
	}
	// Flush must wait for programs to land plus the firmware cost, so it
	// finishes strictly after the (cached) write acknowledgement.
	if fd <= ack {
		t.Fatalf("flush done %v not after write ack %v", fd, ack)
	}
	if fd.Sub(ack) < d.Config().FlushLatency {
		t.Fatalf("flush cheaper than firmware cost: %v", fd.Sub(ack))
	}
	if d.Stats().Flushes != 1 {
		t.Fatalf("flush count %d", d.Stats().Flushes)
	}
}

func TestWriteCacheAbsorbsBurstThenThrottles(t *testing.T) {
	raw := testConfig()
	raw.WriteCacheBytes = 1 << 20
	d := newTestSSD(t, raw)
	cfg := d.Config() // validated: defaults filled in
	// A burst the size of the cache is acknowledged at roughly link speed.
	burst := int64(1 << 20)
	ack, err := d.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: burst})
	if err != nil {
		t.Fatal(err)
	}
	linkTime := vtime.TransferTime(burst, cfg.LinkBandwidth)
	if ack > vtime.Time(0).Add(2*linkTime+vtime.Millisecond) {
		t.Fatalf("burst ack %v much slower than link %v", ack, linkTime)
	}
	// Sustained writes are throttled to the flash program rate.
	at := ack
	var total int64
	for off := burst; off < d.Capacity()-int64(4<<20); off += burst {
		at, err = d.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: off, Len: burst})
		if err != nil {
			t.Fatal(err)
		}
		total += burst
	}
	gotRate := vtime.Rate(total, at.Sub(ack))
	sustained := cfg.SustainedProgramRate()
	if gotRate > sustained*1.15 {
		t.Fatalf("sustained rate %.0f exceeds flash ceiling %.0f", gotRate, sustained)
	}
	if gotRate < sustained*0.5 {
		t.Fatalf("sustained rate %.0f far below flash ceiling %.0f", gotRate, sustained)
	}
}

func TestFactoryBadBlocksAreSkipped(t *testing.T) {
	cfg := testConfig()
	cfg.BadBlockFrac = 0.05
	cfg.Seed = 7
	d := newTestSSD(t, cfg)
	// The device still presents full capacity and survives two passes.
	at := fill(t, d, 1<<20, 0)
	fill(t, d, 1<<20, at)
	if d.WAF() < 1.0 {
		t.Fatalf("WAF = %v", d.WAF())
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	d := newTestSSD(t, testConfig())
	_, err := d.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: d.Capacity(), Len: blockdev.PageSize})
	if !errors.Is(err, blockdev.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrashLosesUnflushedContent(t *testing.T) {
	d := newTestSSD(t, testConfig())
	tag := blockdev.DataTag(1, 1)
	if err := d.Content().WriteTag(1, tag); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Flush(0); err != nil {
		t.Fatal(err)
	}
	if err := d.Content().WriteTag(2, blockdev.DataTag(2, 1)); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if got, err := d.Content().ReadTag(1); err != nil {
		t.Fatal(err)
	} else if got != tag {
		t.Fatalf("flushed tag lost: %v", got)
	}
	if got, err := d.Content().ReadTag(2); err != nil {
		t.Fatal(err)
	} else if !got.IsZero() {
		t.Fatalf("unflushed tag survived crash: %v", got)
	}
}

func TestWearAccounting(t *testing.T) {
	d := newTestSSD(t, testConfig())
	at := fill(t, d, 1<<20, 0)
	for i := 0; i < 2; i++ {
		at = fill(t, d, 1<<20, at)
	}
	if d.MeanEraseCount() <= 0 {
		t.Fatal("no erases recorded after repeated fills")
	}
	if d.FlashStats().Erases == 0 {
		t.Fatal("flash erase counter zero")
	}
}
