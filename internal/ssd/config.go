// Package ssd models a commodity SSD: a page-mapped FTL over NAND flash
// (internal/flash) with channel/way parallelism, a volatile DRAM write
// cache, over-provisioned space, greedy garbage collection, TRIM, and a host
// link (SATA or NVMe). The behaviours the paper's design depends on —
// sustained-write degradation for small random writes, the erase-group-size
// performance cliff (Fig. 2), the cost of the flush command (Table 3), and
// wear/lifetime — all emerge mechanistically from this model rather than
// from fitted curves.
package ssd

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// CellType identifies the NAND cell technology, which drives endurance and
// program latency.
type CellType uint8

// Supported cell technologies.
const (
	MLC CellType = iota + 1
	TLC
)

// String names the cell type.
func (c CellType) String() string {
	switch c {
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	default:
		return fmt.Sprintf("cell(%d)", uint8(c))
	}
}

// Config describes one SSD. Zero fields are filled with defaults by
// Validate; the packaged presets (SATAMLCConfig etc.) model the product
// classes in the paper's Tables 4 and 12.
type Config struct {
	// Name labels the device in stats and experiment output.
	Name string
	// Capacity is the host-visible size in bytes.
	Capacity int64
	// SpareFactor is physical over-provisioning as a fraction of Capacity
	// (default 0.07, typical for commodity SATA drives). Physical space is
	// rounded up so at least MinSpareGroups erase groups of headroom exist.
	SpareFactor float64
	// EraseGroupSize is the size of the FTL's allocation/erase unit (the
	// paper's "erase group"), default 256 MiB.
	EraseGroupSize int64
	// PagesPerBlock is the NAND block size in pages (default 256 = 1 MiB).
	PagesPerBlock int
	// Parallelism is the number of flash units (channel × way) that can
	// read/program concurrently (default 16).
	Parallelism int
	// ReadLatency is the per-page flash read time (default 60 µs).
	ReadLatency vtime.Duration
	// ProgramLatency is the per-page program time (default 150 µs MLC).
	ProgramLatency vtime.Duration
	// EraseLatency is the per-block erase time (default 2 ms).
	EraseLatency vtime.Duration
	// LinkBandwidth is the host interface bandwidth in bytes/s
	// (default 550 MB/s, SATA 3.0).
	LinkBandwidth float64
	// CommandOverhead is the per-command host interface latency; it bounds
	// small-request IOPS (default 10 µs ≈ 100 K IOPS over SATA).
	CommandOverhead vtime.Duration
	// FlushLatency is the firmware cost of a FLUSH CACHE command on top of
	// draining the write cache (default 2 ms).
	FlushLatency vtime.Duration
	// WriteCacheBytes is the volatile DRAM write buffer (default 64 MiB —
	// commodity drives dedicate only part of their DRAM to write
	// caching).
	WriteCacheBytes int64
	// EnduranceCycles is the per-block P/E budget (3000 MLC, 1000 TLC).
	EnduranceCycles int64
	// Cell is the NAND technology (default MLC).
	Cell CellType
	// LogGranules is the number of erase-group-sized regions the FTL can
	// keep "open" for fragmented (non-sequential) host writes before it
	// must merge one — the hybrid-FTL log-block pool that makes write
	// performance collapse when write units are much smaller than the
	// erase group (the paper's Figure 2 behaviour). Default 8; set to -1
	// for an ideal page-mapped FTL with no merge penalty.
	LogGranules int
	// BadBlockFrac is the fraction of factory-marked bad blocks the FTL
	// must skip (default 0; tests exercise nonzero values).
	BadBlockFrac float64
	// Seed drives deterministic factory bad-block placement.
	Seed int64
}

// MinSpareGroups is the minimum number of spare erase groups the FTL needs
// so garbage collection always has a destination.
const MinSpareGroups = 2

// Validate fills defaults and checks invariants, returning the effective
// configuration.
func (c Config) Validate() (Config, error) {
	if c.Name == "" {
		c.Name = "ssd"
	}
	if c.Capacity <= 0 {
		return c, fmt.Errorf("ssd %s: capacity %d must be positive", c.Name, c.Capacity)
	}
	if c.SpareFactor == 0 {
		c.SpareFactor = 0.07
	}
	if c.SpareFactor < 0 || c.SpareFactor >= 1 {
		return c, fmt.Errorf("ssd %s: spare factor %v out of range", c.Name, c.SpareFactor)
	}
	if c.EraseGroupSize == 0 {
		c.EraseGroupSize = 256 << 20
	}
	if c.PagesPerBlock == 0 {
		c.PagesPerBlock = 256
	}
	if c.Parallelism == 0 {
		c.Parallelism = 16
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 60 * vtime.Microsecond
	}
	if c.ProgramLatency == 0 {
		c.ProgramLatency = 150 * vtime.Microsecond
	}
	if c.EraseLatency == 0 {
		c.EraseLatency = 2 * vtime.Millisecond
	}
	if c.LinkBandwidth == 0 {
		c.LinkBandwidth = 550e6
	}
	if c.CommandOverhead == 0 {
		c.CommandOverhead = 10 * vtime.Microsecond
	}
	if c.FlushLatency == 0 {
		c.FlushLatency = 2 * vtime.Millisecond
	}
	if c.WriteCacheBytes == 0 {
		c.WriteCacheBytes = 64 << 20
	}
	if c.EnduranceCycles == 0 {
		c.EnduranceCycles = 3000
	}
	if c.Cell == 0 {
		c.Cell = MLC
	}
	if c.LogGranules == 0 {
		c.LogGranules = 8
	}
	blockBytes := int64(c.PagesPerBlock) * blockdev.PageSize
	if c.EraseGroupSize%blockBytes != 0 {
		return c, fmt.Errorf("ssd %s: erase group %d not a multiple of block size %d", c.Name, c.EraseGroupSize, blockBytes)
	}
	if c.Capacity%blockdev.PageSize != 0 {
		return c, fmt.Errorf("ssd %s: capacity %d not page-aligned", c.Name, c.Capacity)
	}
	if c.BadBlockFrac < 0 || c.BadBlockFrac > 0.2 {
		return c, fmt.Errorf("ssd %s: bad block fraction %v out of range [0, 0.2]", c.Name, c.BadBlockFrac)
	}
	return c, nil
}

// SustainedProgramRate reports the aggregate flash program bandwidth in
// bytes/s — the sustained write ceiling once the DRAM cache is full.
func (c Config) SustainedProgramRate() float64 {
	if c.ProgramLatency <= 0 {
		return 0
	}
	return float64(c.Parallelism) * float64(blockdev.PageSize) / c.ProgramLatency.Seconds()
}

// SATAMLCConfig models a commodity SATA 3.0 MLC drive of the 840 Pro class
// used in the paper's prototype (Table 1): ~530 MB/s reads, ~400 MB/s
// sustained writes, ~100 K IOPS, 3 K P/E cycles.
func SATAMLCConfig(name string, capacity int64) Config {
	return Config{
		Name:            name,
		Capacity:        capacity,
		Cell:            MLC,
		EnduranceCycles: 3000,
		ProgramLatency:  150 * vtime.Microsecond,
		LinkBandwidth:   550e6,
	}
}

// SATATLCConfig models a budget SATA TLC drive: cheaper per GB, slower
// programs, 1 K P/E cycles.
func SATATLCConfig(name string, capacity int64) Config {
	return Config{
		Name:            name,
		Capacity:        capacity,
		Cell:            TLC,
		EnduranceCycles: 1000,
		ProgramLatency:  260 * vtime.Microsecond,
		LinkBandwidth:   530e6,
	}
}

// NVMeMLCConfig models a high-end PCI-e/NVMe MLC drive of the SSD-B class in
// Table 4: ~2.7 GB/s reads, ~1.1 GB/s sustained writes, ~450 K IOPS.
func NVMeMLCConfig(name string, capacity int64) Config {
	return Config{
		Name:            name,
		Capacity:        capacity,
		Cell:            MLC,
		EnduranceCycles: 3000,
		Parallelism:     32,
		ProgramLatency:  120 * vtime.Microsecond,
		LinkBandwidth:   2700e6,
		CommandOverhead: 2 * vtime.Microsecond,
		WriteCacheBytes: 128 << 20,
	}
}
