package ssd

import (
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Tests for the hybrid-FTL write-alignment model (granule.go) and the
// flush barrier.

func write(t *testing.T, d *SSD, at vtime.Time, off, n int64) vtime.Time {
	t.Helper()
	done, err := d.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: off, Len: n})
	if err != nil {
		t.Fatalf("write off=%d: %v", off, err)
	}
	return done
}

func TestGranuleSequentialFillNeverMerges(t *testing.T) {
	d := newTestSSD(t, testConfig())
	var at vtime.Time
	for off := int64(0); off < d.Capacity(); off += 256 << 10 {
		at = write(t, d, at, off, 256<<10)
	}
	if d.GCPageCopies() != 0 {
		t.Fatalf("sequential fill merged %d pages", d.GCPageCopies())
	}
	if d.liveLogs != 0 {
		t.Fatalf("%d log granules left open after complete sweeps", d.liveLogs)
	}
}

func TestGranuleFullOverwriteIsSwitchMerge(t *testing.T) {
	d := newTestSSD(t, testConfig())
	egs := d.Config().EraseGroupSize
	var at vtime.Time
	at = fill(t, d, 1<<20, at)
	// Whole-granule rewrites, in arbitrary granule order: all free.
	for _, g := range []int64{3, 0, 7, 5} {
		at = write(t, d, at, g*egs, egs)
	}
	if d.GCPageCopies() != 0 {
		t.Fatalf("aligned overwrites merged %d pages", d.GCPageCopies())
	}
}

func TestGranuleScatteredWritesMergeOnPoolOverflow(t *testing.T) {
	cfg := testConfig()
	cfg.LogGranules = 2
	d := newTestSSD(t, cfg)
	egs := d.Config().EraseGroupSize
	var at vtime.Time
	at = fill(t, d, 1<<20, at)
	// Mid-granule 4K writes across more granules than the pool holds.
	for g := int64(0); g < 6; g++ {
		at = write(t, d, at, g*egs+egs/2, blockdev.PageSize)
	}
	if d.GCPageCopies() == 0 {
		t.Fatal("pool overflow never merged")
	}
}

func TestGranuleIdealFTLDisablesMerges(t *testing.T) {
	cfg := testConfig()
	cfg.LogGranules = -1
	d := newTestSSD(t, cfg)
	egs := d.Config().EraseGroupSize
	var at vtime.Time
	at = fill(t, d, 1<<20, at)
	for g := int64(0); g < 12; g++ {
		at = write(t, d, at, g*egs+egs/4, blockdev.PageSize)
	}
	// The ideal page-mapped FTL only copies for its own log GC, which this
	// small workload does not trigger.
	if d.GCPageCopies() != 0 {
		t.Fatalf("ideal FTL merged %d pages", d.GCPageCopies())
	}
}

func TestGranuleMergeCostScalesWithValidity(t *testing.T) {
	// Scattered writes over a fuller device must copy more than over an
	// emptier one.
	run := func(fillFrac int64) int64 {
		cfg := testConfig()
		cfg.LogGranules = 1
		d := newTestSSD(t, cfg)
		var at vtime.Time
		for off := int64(0); off < d.Capacity()*fillFrac/4; off += 1 << 20 {
			at = write(t, d, at, off, 1<<20)
		}
		egs := d.Config().EraseGroupSize
		for g := int64(0); g < 16; g++ {
			at = write(t, d, at, (g%8)*egs+egs/2+g*blockdev.PageSize, blockdev.PageSize)
		}
		return d.GCPageCopies()
	}
	// Full fill: every targeted granule is live; quarter fill: most are
	// empty, so their merges are nearly free.
	if !(run(4) > run(1)) {
		t.Fatal("merge cost does not grow with device validity")
	}
}

func TestGranuleTrimResetsStreaming(t *testing.T) {
	d := newTestSSD(t, testConfig())
	egs := d.Config().EraseGroupSize
	var at vtime.Time
	at = fill(t, d, 1<<20, at)
	// Fragment a granule, then trim it whole: the next sequential rewrite
	// is free again.
	at = write(t, d, at, egs/2, blockdev.PageSize)
	copies := d.GCPageCopies()
	done, err := d.Submit(at, blockdev.Request{Op: blockdev.OpTrim, Off: 0, Len: egs})
	if err != nil {
		t.Fatal(err)
	}
	at = done
	at = write(t, d, at, 0, egs)
	if d.GCPageCopies() != copies {
		t.Fatalf("post-trim sequential rewrite merged %d pages", d.GCPageCopies()-copies)
	}
}

func TestFlushBarrierDelaysSubsequentIO(t *testing.T) {
	d := newTestSSD(t, testConfig())
	ack := write(t, d, 0, 0, 1<<20)
	fd, err := d.Flush(ack)
	if err != nil {
		t.Fatal(err)
	}
	// A read submitted before the flush completes waits for the barrier.
	done, err := d.Submit(ack, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if done < fd {
		t.Fatalf("read done %v before flush barrier %v", done, fd)
	}
	// And a write too.
	wdone := write(t, d, ack, 2<<20, blockdev.PageSize)
	if wdone < fd {
		t.Fatalf("write done %v before flush barrier %v", wdone, fd)
	}
}

func TestAccountCopiesAggregates(t *testing.T) {
	d := newTestSSD(t, testConfig())
	before := d.FlashStats()
	d.nand.AccountCopies(100)
	after := d.FlashStats()
	if after.PagesProgrammed-before.PagesProgrammed != 100 ||
		after.PagesRead-before.PagesRead != 100 {
		t.Fatalf("copies not accounted: %+v -> %+v", before, after)
	}
	if after.Erases == before.Erases {
		t.Fatal("amortized erases not accounted")
	}
	d.nand.AccountCopies(0) // no-op
	if d.FlashStats() != after {
		t.Fatal("zero copies changed stats")
	}
}

func TestWAFIncludesMergeCopies(t *testing.T) {
	cfg := testConfig()
	cfg.LogGranules = 1
	d := newTestSSD(t, cfg)
	var at vtime.Time
	at = fill(t, d, 1<<20, at)
	egs := d.Config().EraseGroupSize
	for g := int64(0); g < 8; g++ {
		at = write(t, d, at, (g%4)*egs+egs/2+g*blockdev.PageSize, blockdev.PageSize)
	}
	if d.WAF() <= 1.0 {
		t.Fatalf("WAF %v does not reflect merge copies", d.WAF())
	}
}
