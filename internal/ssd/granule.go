package ssd

import "srccache/internal/vtime"

// Hybrid-FTL write alignment (the mechanism behind the paper's Figure 2):
// commodity SSD firmware tracks writes per erase-group-sized region
// ("granule") and absorbs them in log blocks. A sequential pass that covers
// a whole granule is free (switch merge); anything else occupies one of a
// bounded pool of log granules, and when the pool overflows the firmware
// merges the oldest — copying valid pages around the logged span, with
// cost growing with the granule's utilization. This is what makes
// sustained throughput collapse for write units far below the erase group
// size, recover as the unit approaches it, and depend on over-provisioning
// below it.

// granuleOf maps a host page to its granule.
func (d *SSD) granuleOf(host int64) int64 { return host / d.pagesPerSB }

// granuleCount is the number of host-side granules.
func (d *SSD) granuleCount() int64 {
	return (d.hostPages + d.pagesPerSB - 1) / d.pagesPerSB
}

// noteWriteAlignment classifies one host write run, granule by granule,
// opening/extending log blocks and merging when the pool overflows. ready
// gates the flash work of any merge.
func (d *SSD) noteWriteAlignment(firstPage, pages int64, ready vtime.Time) error {
	if d.cfg.LogGranules < 0 {
		return nil // ideal page-mapped FTL
	}
	for p := firstPage; p < firstPage+pages; {
		g := d.granuleOf(p)
		gStart := g * d.pagesPerSB
		gEnd := gStart + d.pagesPerSB
		end := gEnd
		if firstPage+pages < end {
			end = firstPage + pages
		}
		if err := d.noteGranuleWrite(g, gStart, gEnd, p, end, ready); err != nil {
			return err
		}
		p = end
	}
	return nil
}

// noteGranuleWrite handles the part of a write run inside one granule.
func (d *SSD) noteGranuleWrite(g, gStart, gEnd, p, end int64, ready vtime.Time) error {
	switch {
	case d.logFill[g] >= 0 && p == d.logFill[g]:
		// Sequential continuation of the open log block.
		d.logFill[g] = end
		d.logPages[g] += end - p
	case d.logFill[g] >= 0:
		// Out-of-order write: the log block keeps absorbing, but the
		// granule can no longer switch-merge for free.
		d.logFill[g] = end
		d.logStart[g] = -2 // sequentiality broken
		if d.logPages[g] += end - p; d.logPages[g] > d.pagesPerSB {
			d.logPages[g] = d.pagesPerSB
		}
	default:
		d.openLog(g, p, end, ready)
		if err := d.evictLogGranules(ready); err != nil {
			return err
		}
	}
	// A log block that has swept the granule start-to-end switch-merges
	// for free.
	if d.logStart[g] == gStart && d.logFill[g] == gEnd {
		d.closeLog(g)
	}
	return nil
}

func (d *SSD) openLog(g, p, end int64, _ vtime.Time) {
	d.logStart[g] = p
	d.logFill[g] = end
	d.logPages[g] = end - p
	d.openGran = append(d.openGran, g)
	d.liveLogs++
}

func (d *SSD) closeLog(g int64) {
	if d.logFill[g] >= 0 {
		d.liveLogs--
	}
	d.logStart[g] = -1
	d.logFill[g] = -1
	// The FIFO entry is removed lazily by evictLogGranules.
}

// evictLogGranules merges the oldest open log blocks until the pool fits,
// discarding stale queue entries (closed by switch merge or trim) as it
// goes.
func (d *SSD) evictLogGranules(ready vtime.Time) error {
	for d.liveLogs > d.cfg.LogGranules {
		g := d.openGran[0]
		d.openGran = d.openGran[1:]
		if d.logFill[g] < 0 {
			continue // stale entry
		}
		if err := d.mergeGranule(g, ready); err != nil {
			return err
		}
	}
	// Bound queue growth from stale entries.
	for len(d.openGran) > 4*(d.cfg.LogGranules+1) && d.logFill[d.openGran[0]] < 0 {
		d.openGran = d.openGran[1:]
	}
	return nil
}

// mergeGranule performs a partial merge of the granule's open log block on
// eviction: the firmware rewrites the data blocks the absorbed pages
// touched, so the cost scales with how much the log absorbed and how much
// of the granule is live. The rewrites go straight to data blocks — they
// do not re-enter the page-mapped log (which would double-charge
// relocation) — so the cost is program/read time on the flash units plus
// aggregate wear accounting.
func (d *SSD) mergeGranule(g int64, ready vtime.Time) error {
	logged := d.logPages[g]
	d.closeLog(g)
	if d.granValid[g] == 0 || logged <= 0 {
		return nil
	}
	copies := 2 * logged * int64(d.granValid[g]) / d.pagesPerSB
	if copies < 1 {
		copies = 1
	}
	d.nand.AccountCopies(copies)
	d.gcPageCopies += copies
	units := int64(d.cfg.Parallelism)
	if copies < units {
		units = copies
	}
	perUnit := (copies + units - 1) / units
	for i := int64(0); i < units; i++ {
		u := int((d.mergeCursor + i) % int64(d.cfg.Parallelism))
		d.bumpUnit(u, ready, vtime.Duration(perUnit)*(d.cfg.ReadLatency+d.cfg.ProgramLatency))
	}
	d.mergeCursor += units
	return nil
}

// noteTrimAlignment resets granule state for trims; a trim covering a whole
// granule closes its log block for free and re-arms sequential streaming.
func (d *SSD) noteTrimAlignment(firstPage, pages int64) {
	if d.cfg.LogGranules < 0 {
		return
	}
	for p := firstPage; p < firstPage+pages; {
		g := d.granuleOf(p)
		gStart := g * d.pagesPerSB
		gEnd := gStart + d.pagesPerSB
		end := gEnd
		if firstPage+pages < end {
			end = firstPage + pages
		}
		if p == gStart && end == gEnd {
			d.closeLog(g)
		}
		p = end
	}
}
