package ssd

import (
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/flash"
	"srccache/internal/vtime"
)

// ErrNoFreeSpace reports that garbage collection could not reclaim an erase
// group — the FTL invariant (MinSpareGroups of headroom) was violated.
var ErrNoFreeSpace = errors.New("ssd: ftl out of reclaimable space")

type groupState uint8

const (
	groupFree groupState = iota + 1
	groupActive
	groupClosed
	groupRetired
)

// SSD is a simulated flash drive implementing blockdev.Device. See the
// package comment for the modelling approach.
type SSD struct {
	cfg   Config
	nand  *flash.Array
	cont  *blockdev.Content
	stats blockdev.Stats

	hostPages   int64
	pagesPerSB  int64
	blocksPerSB int
	numSB       int

	sbBlocks []int32 // flattened [numSB][blocksPerSB] -> flash block id
	sbValid  []int32
	sbState  []groupState
	freeSBs  []int32
	active   int32
	writePtr int64
	inGC     bool

	mapTbl []int32 // host page -> phys page index, -1 unmapped
	rmap   []int32 // phys page index -> host page, -1 invalid

	units    []vtime.Time
	linkBusy vtime.Time
	maxBusy  vtime.Time
	barrier  vtime.Time // in-flight FLUSH: later commands wait for it

	// Hybrid-FTL write-alignment state (granule.go).
	logStart    []int64
	logFill     []int64
	logPages    []int64
	granValid   []int32
	openGran    []int64
	liveLogs    int
	mergeCursor int64

	pageXfer    vtime.Duration
	cacheWindow vtime.Duration

	hostPagesWritten int64
	gcPageCopies     int64
	retiredGroups    int64
}

var _ blockdev.Device = (*SSD)(nil)

// New builds an SSD from cfg (defaults filled via Validate).
func New(cfg Config) (*SSD, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	pagesPerSB := cfg.EraseGroupSize / blockdev.PageSize
	blocksPerSB := int(cfg.EraseGroupSize / (int64(cfg.PagesPerBlock) * blockdev.PageSize))
	hostPages := cfg.Capacity / blockdev.PageSize

	// Physical space: capacity grown by the spare factor, with at least
	// MinSpareGroups+1 groups of headroom so GC always has a destination
	// and a victim below full validity exists.
	physBytes := int64(float64(cfg.Capacity) * (1 + cfg.SpareFactor))
	minBytes := cfg.Capacity + int64(MinSpareGroups+1)*cfg.EraseGroupSize
	if physBytes < minBytes {
		physBytes = minBytes
	}
	numSB := int((physBytes + cfg.EraseGroupSize - 1) / cfg.EraseGroupSize)
	physPages := int64(numSB) * pagesPerSB
	if physPages > int64(1)<<31-1 {
		return nil, fmt.Errorf("ssd %s: %d physical pages exceed addressing limit", cfg.Name, physPages)
	}

	// Build the flash array with enough blocks to populate every erase
	// group after skipping factory-bad blocks.
	needBlocks := numSB * blocksPerSB
	rawBlocks := needBlocks
	if cfg.BadBlockFrac > 0 {
		rawBlocks = int(float64(needBlocks)*(1+2*cfg.BadBlockFrac)) + 8
	}
	nand, err := flash.New(flash.Geometry{
		Blocks:        rawBlocks,
		PagesPerBlock: cfg.PagesPerBlock,
		PageSize:      blockdev.PageSize,
	}, cfg.EnduranceCycles)
	if err != nil {
		return nil, err
	}
	nand.MarkFactoryBadBlocks(cfg.BadBlockFrac, cfg.Seed)

	d := &SSD{
		cfg:         cfg,
		nand:        nand,
		cont:        blockdev.NewContent(cfg.Capacity),
		hostPages:   hostPages,
		pagesPerSB:  pagesPerSB,
		blocksPerSB: blocksPerSB,
		numSB:       numSB,
		sbBlocks:    make([]int32, numSB*blocksPerSB),
		sbValid:     make([]int32, numSB),
		sbState:     make([]groupState, numSB),
		mapTbl:      make([]int32, hostPages),
		rmap:        make([]int32, physPages),
		units:       make([]vtime.Time, cfg.Parallelism),
		active:      -1,
		pageXfer:    vtime.TransferTime(blockdev.PageSize, cfg.LinkBandwidth),
	}
	rate := cfg.SustainedProgramRate()
	d.cacheWindow = vtime.TransferTime(cfg.WriteCacheBytes, rate)
	nGran := d.granuleCount()
	d.logStart = make([]int64, nGran)
	d.logFill = make([]int64, nGran)
	d.logPages = make([]int64, nGran)
	d.granValid = make([]int32, nGran)
	for g := int64(0); g < nGran; g++ {
		d.logStart[g] = -1
		d.logFill[g] = -1
	}
	for i := range d.mapTbl {
		d.mapTbl[i] = -1
	}
	for i := range d.rmap {
		d.rmap[i] = -1
	}
	// Assemble erase groups from healthy blocks.
	next := 0
	for sb := 0; sb < numSB; sb++ {
		d.sbState[sb] = groupFree
		for b := 0; b < blocksPerSB; b++ {
			for next < rawBlocks && nand.IsBad(next) {
				next++
			}
			if next >= rawBlocks {
				return nil, fmt.Errorf("ssd %s: not enough healthy flash blocks (%d bad)", cfg.Name, rawBlocks-needBlocks)
			}
			d.sbBlocks[sb*blocksPerSB+b] = int32(next)
			next++
		}
	}
	d.freeSBs = make([]int32, 0, numSB)
	for sb := numSB - 1; sb >= 0; sb-- {
		d.freeSBs = append(d.freeSBs, int32(sb))
	}
	return d, nil
}

// Config returns the effective configuration.
func (d *SSD) Config() Config { return d.cfg }

// Capacity reports the host-visible size in bytes.
func (d *SSD) Capacity() int64 { return d.cfg.Capacity }

// Stats reports host-level traffic counters.
func (d *SSD) Stats() *blockdev.Stats { return &d.stats }

// Content exposes the content store for tag/blob bookkeeping.
func (d *SSD) Content() *blockdev.Content { return d.cont }

// FlashStats reports NAND-level operation counts.
func (d *SSD) FlashStats() flash.Stats { return d.nand.Stats() }

// WAF reports the write amplification factor: flash pages programmed per
// host page written. Zero host writes yields zero.
func (d *SSD) WAF() float64 {
	if d.hostPagesWritten == 0 {
		return 0
	}
	return float64(d.nand.Stats().PagesProgrammed) / float64(d.hostPagesWritten)
}

// GCPageCopies reports pages moved by FTL garbage collection.
func (d *SSD) GCPageCopies() int64 { return d.gcPageCopies }

// FreeGroups reports the number of free erase groups.
func (d *SSD) FreeGroups() int { return len(d.freeSBs) }

// EraseGroups reports the total number of erase groups.
func (d *SSD) EraseGroups() int { return d.numSB }

// RetiredGroups reports erase groups retired due to grown bad blocks.
func (d *SSD) RetiredGroups() int64 { return d.retiredGroups }

// MeanEraseCount reports average NAND block wear.
func (d *SSD) MeanEraseCount() float64 { return d.nand.MeanEraseCount() }

// Crash models a power failure: the volatile content (write cache) is lost
// and reverts to the last flushed state. Timing state is unaffected.
func (d *SSD) Crash() { d.cont.Crash() }

// unitOf maps a physical page index to its flash unit (channel × way).
func (d *SSD) unitOf(phys int64) int {
	blockInSB := int(phys % d.pagesPerSB % int64(d.blocksPerSB))
	return blockInSB % d.cfg.Parallelism
}

// blockPage maps a physical page index to (flash block id, page in block).
func (d *SSD) blockPage(phys int64) (int, int) {
	sb := phys / d.pagesPerSB
	idx := phys % d.pagesPerSB
	blockInSB := idx % int64(d.blocksPerSB)
	pageInBlock := idx / int64(d.blocksPerSB)
	return int(d.sbBlocks[sb*int64(d.blocksPerSB)+blockInSB]), int(pageInBlock)
}

func (d *SSD) bumpUnit(u int, ready vtime.Time, cost vtime.Duration) vtime.Time {
	t := vtime.Max(d.units[u], ready).Add(cost)
	d.units[u] = t
	if t > d.maxBusy {
		d.maxBusy = t
	}
	return t
}

// invalidate drops the mapping for a host page if present.
func (d *SSD) invalidate(host int64) {
	old := d.mapTbl[host]
	if old < 0 {
		return
	}
	d.mapTbl[host] = -1
	d.rmap[old] = -1
	d.sbValid[int64(old)/d.pagesPerSB]--
	d.granValid[d.granuleOf(host)]--
}

// ensureActive guarantees the active group has a programmable page,
// closing an exhausted group, garbage collecting if free groups are scarce,
// and opening a fresh group as needed. Garbage collection may itself open
// and partially fill an active group with copied pages; in that case the
// caller continues in it.
func (d *SSD) ensureActive(ready vtime.Time) error {
	ranGC := false
	for d.active < 0 || d.writePtr == d.pagesPerSB {
		if d.active >= 0 {
			d.sbState[d.active] = groupClosed
			d.active = -1
		}
		if !d.inGC && !ranGC && len(d.freeSBs) <= MinSpareGroups-1 {
			ranGC = true
			if err := d.collect(ready); err != nil {
				return err
			}
			if d.active >= 0 {
				continue // GC opened a group; use it if it has room
			}
		}
		if len(d.freeSBs) == 0 {
			return ErrNoFreeSpace
		}
		sb := d.freeSBs[len(d.freeSBs)-1]
		d.freeSBs = d.freeSBs[:len(d.freeSBs)-1]
		d.sbState[sb] = groupActive
		d.active = sb
		d.writePtr = 0
	}
	return nil
}

// allocPage reserves and programs the next physical page in the active
// group, charging program time to its flash unit with data available at
// ready. It returns the physical page index.
func (d *SSD) allocPage(ready vtime.Time) (int64, error) {
	if err := d.ensureActive(ready); err != nil {
		return 0, err
	}
	phys := int64(d.active)*d.pagesPerSB + d.writePtr
	d.writePtr++
	blk, pg := d.blockPage(phys)
	if err := d.nand.Program(blk, pg); err != nil {
		return 0, fmt.Errorf("ssd %s: %w", d.cfg.Name, err)
	}
	d.bumpUnit(d.unitOf(phys), ready, d.cfg.ProgramLatency)
	return phys, nil
}

// writePage maps host page -> a freshly programmed physical page.
func (d *SSD) writePage(host int64, ready vtime.Time) error {
	d.invalidate(host)
	phys, err := d.allocPage(ready)
	if err != nil {
		return err
	}
	d.mapTbl[host] = int32(phys)
	d.rmap[phys] = int32(host)
	d.sbValid[phys/d.pagesPerSB]++
	d.granValid[d.granuleOf(host)]++
	d.hostPagesWritten++
	return nil
}

// collect runs greedy garbage collection until MinSpareGroups groups are
// free, copying valid pages out of minimum-valid victims.
func (d *SSD) collect(ready vtime.Time) error {
	d.inGC = true
	defer func() { d.inGC = false }()
	for len(d.freeSBs) < MinSpareGroups {
		victim := int32(-1)
		best := int32(int64(d.pagesPerSB) + 1)
		for sb := 0; sb < d.numSB; sb++ {
			if d.sbState[sb] != groupClosed {
				continue
			}
			if d.sbValid[sb] < best {
				best = d.sbValid[sb]
				victim = int32(sb)
			}
		}
		if victim < 0 || int64(best) >= d.pagesPerSB {
			// No reclaimable group below full validity.
			if len(d.freeSBs) > 0 {
				return nil
			}
			return ErrNoFreeSpace
		}
		base := int64(victim) * d.pagesPerSB
		for idx := int64(0); idx < d.pagesPerSB && d.sbValid[victim] > 0; idx++ {
			phys := base + idx
			host := d.rmap[phys]
			if host < 0 {
				continue
			}
			// Read from the victim's unit, program into the active group.
			readDone := d.bumpUnit(d.unitOf(phys), ready, d.cfg.ReadLatency)
			blk, pg := d.blockPage(phys)
			if err := d.nand.Read(blk, pg); err != nil {
				return fmt.Errorf("ssd %s gc: %w", d.cfg.Name, err)
			}
			d.rmap[phys] = -1
			d.sbValid[victim]--
			d.mapTbl[host] = -1
			if err := d.writePage(int64(host), readDone); err != nil {
				return err
			}
			d.hostPagesWritten-- // GC copies are not host writes
			d.gcPageCopies++
		}
		d.eraseGroup(victim, ready)
	}
	return nil
}

// eraseGroup erases every block of the group and returns it to the free
// pool; a worn-out block retires the whole group.
func (d *SSD) eraseGroup(sb int32, ready vtime.Time) {
	retired := false
	for b := 0; b < d.blocksPerSB; b++ {
		blk := int(d.sbBlocks[int(sb)*d.blocksPerSB+b])
		if err := d.nand.Erase(blk); err != nil {
			retired = true
			continue
		}
		d.bumpUnit(blk%d.cfg.Parallelism, ready, d.cfg.EraseLatency)
	}
	if retired {
		d.sbState[sb] = groupRetired
		d.retiredGroups++
		return
	}
	d.sbState[sb] = groupFree
	d.freeSBs = append(d.freeSBs, sb)
}

// Submit schedules one request and returns its completion time.
func (d *SSD) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	if err := req.Validate(d.cfg.Capacity); err != nil {
		return at, err
	}
	d.stats.Record(req)
	firstPage := req.Off / blockdev.PageSize
	pages := req.Pages()

	switch req.Op {
	case blockdev.OpTrim:
		// TRIM is a metadata operation: link command overhead only.
		for p := firstPage; p < firstPage+pages; p++ {
			d.invalidate(p)
		}
		d.noteTrimAlignment(firstPage, pages)
		if err := d.cont.Trim(firstPage, pages); err != nil {
			return at, err
		}
		start := vtime.Max(d.linkBusy, vtime.Max(at, d.barrier))
		d.linkBusy = start.Add(d.cfg.CommandOverhead)
		return d.linkBusy, nil

	case blockdev.OpWrite:
		start := vtime.Max(d.linkBusy, vtime.Max(at, d.barrier))
		linkDone := start.Add(d.cfg.CommandOverhead + vtime.Duration(pages)*d.pageXfer)
		d.linkBusy = linkDone
		if err := d.noteWriteAlignment(firstPage, pages, linkDone); err != nil {
			return linkDone, err
		}
		for p := firstPage; p < firstPage+pages; p++ {
			if err := d.writePage(p, linkDone); err != nil {
				return linkDone, err
			}
		}
		// The write is acknowledged once it is in the DRAM cache, unless
		// the cache is full, in which case the host is throttled to the
		// flash drain rate.
		ack := linkDone
		if backlog := d.maxBusy.Sub(linkDone); backlog > d.cacheWindow {
			ack = d.maxBusy.Add(-d.cacheWindow)
		}
		return ack, nil

	case blockdev.OpRead:
		cmdDone := vtime.Max(d.linkBusy, vtime.Max(at, d.barrier)).Add(d.cfg.CommandOverhead)
		flashDone := cmdDone
		for p := firstPage; p < firstPage+pages; p++ {
			phys := d.mapTbl[p]
			if phys < 0 {
				continue // unmapped: served as zeroes, no flash access
			}
			blk, pg := d.blockPage(int64(phys))
			if err := d.nand.Read(blk, pg); err != nil {
				return cmdDone, fmt.Errorf("ssd %s: %w", d.cfg.Name, err)
			}
			done := d.bumpUnit(d.unitOf(int64(phys)), cmdDone, d.cfg.ReadLatency)
			if done > flashDone {
				flashDone = done
			}
		}
		linkDone := vtime.Max(d.linkBusy, flashDone).Add(vtime.Duration(pages) * d.pageXfer)
		d.linkBusy = linkDone
		return linkDone, nil
	}
	return at, fmt.Errorf("%w: %v", blockdev.ErrBadRequest, req.Op)
}

// Flush drains the write cache: it completes once every accepted program has
// reached flash, plus the firmware flush cost, and commits content
// durability. The command occupies the link only briefly — NCQ lets data
// transfers continue while the drain proceeds.
func (d *SSD) Flush(at vtime.Time) (vtime.Time, error) {
	d.stats.Flushes++
	// The cost is waiting for the write-cache drain plus the firmware's
	// flush work. FLUSH CACHE is a barrier: commands issued after it wait
	// for its completion.
	done := vtime.Max(at.Add(d.cfg.CommandOverhead), d.maxBusy).Add(d.cfg.FlushLatency)
	if done > d.barrier {
		d.barrier = done
	}
	d.cont.FlushContent()
	return done, nil
}
