package raid

import (
	"errors"
	"testing"
	"testing/quick"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

const devCap = 1 << 20 // 256 pages per member

// newArray builds an array of n MemDevices wrapped for fault injection.
func newArray(t *testing.T, level Level, chunk int64, n int) (*Array, []*blockdev.Faulty) {
	t.Helper()
	devs := make([]blockdev.Device, n)
	faults := make([]*blockdev.Faulty, n)
	for i := range devs {
		f := blockdev.NewFaulty(blockdev.NewMemDevice(devCap, 100*vtime.Microsecond))
		devs[i] = f
		faults[i] = f
	}
	a, err := New(level, chunk, devs)
	if err != nil {
		t.Fatal(err)
	}
	return a, faults
}

func TestNewValidation(t *testing.T) {
	mk := func(n int) []blockdev.Device {
		devs := make([]blockdev.Device, n)
		for i := range devs {
			devs[i] = blockdev.NewMemDevice(devCap, 0)
		}
		return devs
	}
	if _, err := New(Level0, blockdev.PageSize, mk(1)); err == nil {
		t.Fatal("accepted single device")
	}
	if _, err := New(Level5, blockdev.PageSize, mk(2)); err == nil {
		t.Fatal("accepted 2-device RAID-5")
	}
	if _, err := New(Level1, blockdev.PageSize, mk(3)); err == nil {
		t.Fatal("accepted odd mirror count")
	}
	if _, err := New(Level0, 100, mk(2)); err == nil {
		t.Fatal("accepted unaligned chunk")
	}
	if _, err := New(Level(42), blockdev.PageSize, mk(4)); err == nil {
		t.Fatal("accepted unknown level")
	}
	uneven := mk(2)
	uneven[1] = blockdev.NewMemDevice(2*devCap, 0)
	if _, err := New(Level0, blockdev.PageSize, uneven); err == nil {
		t.Fatal("accepted unequal capacities")
	}
}

func TestCapacityPerLevel(t *testing.T) {
	tests := []struct {
		level Level
		n     int
		want  int64
	}{
		{Level0, 4, 4 * devCap},
		{Level1, 4, 2 * devCap},
		{Level4, 4, 3 * devCap},
		{Level5, 4, 3 * devCap},
	}
	for _, tt := range tests {
		t.Run(tt.level.String(), func(t *testing.T) {
			a, _ := newArray(t, tt.level, blockdev.PageSize, tt.n)
			if a.Capacity() != tt.want {
				t.Fatalf("capacity = %d, want %d", a.Capacity(), tt.want)
			}
		})
	}
}

func TestLevelStrings(t *testing.T) {
	if Level0.String() != "RAID-0" || Level5.String() != "RAID-5" || Level4.String() != "RAID-4" || Level1.String() != "RAID-1" {
		t.Fatal("level names wrong")
	}
	if Level10 != Level1 {
		t.Fatal("Level10 should alias Level1")
	}
}

func TestLocatePageBijective(t *testing.T) {
	for _, level := range []Level{Level0, Level1, Level4, Level5} {
		a, _ := newArray(t, level, 2*blockdev.PageSize, 4)
		seen := make(map[[2]int64]int64)
		pages := a.Capacity() / blockdev.PageSize
		for p := int64(0); p < pages; p++ {
			dev, dpage := a.LocatePage(p)
			if dpage < 0 || dpage >= devCap/blockdev.PageSize {
				t.Fatalf("%v: page %d -> dev page %d out of range", level, p, dpage)
			}
			key := [2]int64{int64(dev), dpage}
			if prev, dup := seen[key]; dup {
				t.Fatalf("%v: pages %d and %d both map to dev %d page %d", level, prev, p, dev, dpage)
			}
			seen[key] = p
		}
	}
}

func TestParityDevRotatesOnlyForRAID5(t *testing.T) {
	a4, _ := newArray(t, Level4, blockdev.PageSize, 4)
	a5, _ := newArray(t, Level5, blockdev.PageSize, 4)
	devs5 := make(map[int]bool)
	for s := int64(0); s < 8; s++ {
		if got := a4.parityDev(s); got != 3 {
			t.Fatalf("RAID-4 parity dev for stripe %d = %d, want 3", s, got)
		}
		devs5[a5.parityDev(s)] = true
	}
	if len(devs5) != 4 {
		t.Fatalf("RAID-5 parity visited %d devices, want 4", len(devs5))
	}
}

func TestSmallWriteRMWPenalty(t *testing.T) {
	a0, _ := newArray(t, Level0, blockdev.PageSize, 4)
	a5, _ := newArray(t, Level5, blockdev.PageSize, 4)
	req := blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize}
	if _, err := a0.Submit(0, req); err != nil {
		t.Fatal(err)
	}
	if _, err := a5.Submit(0, req); err != nil {
		t.Fatal(err)
	}
	readDev := func(a *Array) (reads, writes int64) {
		for _, d := range a.Devices() {
			reads += d.Stats().ReadOps
			writes += d.Stats().WriteOps
		}
		return
	}
	r0, w0 := readDev(a0)
	if r0 != 0 || w0 != 1 {
		t.Fatalf("RAID-0 small write did %d reads %d writes", r0, w0)
	}
	// RAID-5 small write: read old data + old parity, write new data + parity.
	r5, w5 := readDev(a5)
	if r5 != 2 || w5 != 2 {
		t.Fatalf("RAID-5 small write did %d reads %d writes, want 2/2", r5, w5)
	}
}

func TestFullStripeWriteSkipsReads(t *testing.T) {
	a5, _ := newArray(t, Level5, blockdev.PageSize, 4)
	// 3 data chunks = one full stripe.
	if _, err := a5.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 3 * blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	var reads, writes int64
	for _, d := range a5.Devices() {
		reads += d.Stats().ReadOps
		writes += d.Stats().WriteOps
	}
	if reads != 0 {
		t.Fatalf("full-stripe write issued %d reads", reads)
	}
	if writes != 4 { // 3 data + 1 parity
		t.Fatalf("full-stripe write issued %d device writes, want 4", writes)
	}
}

func TestLargeWriteCoalescesPerDevice(t *testing.T) {
	a5, _ := newArray(t, Level5, blockdev.PageSize, 4)
	// 6 full stripes in one request -> one write per device.
	if _, err := a5.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 18 * blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	for i, d := range a5.Devices() {
		if d.Stats().WriteOps != 1 {
			t.Fatalf("device %d received %d writes, want 1 coalesced", i, d.Stats().WriteOps)
		}
	}
}

func TestMirrorWritesBothAndReadsSurvivor(t *testing.T) {
	a1, faults := newArray(t, Level1, blockdev.PageSize, 4)
	req := blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize}
	if _, err := a1.Submit(0, req); err != nil {
		t.Fatal(err)
	}
	if faults[0].Stats().WriteOps != 1 || faults[1].Stats().WriteOps != 1 {
		t.Fatal("mirror write did not hit both members")
	}
	faults[0].Fail()
	if _, err := a1.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatalf("degraded mirror read: %v", err)
	}
	faults[1].Fail()
	if _, err := a1.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("double mirror failure err = %v", err)
	}
}

func TestDegradedParityRead(t *testing.T) {
	a5, faults := newArray(t, Level5, blockdev.PageSize, 4)
	if _, err := a5.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 3 * blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	dev, _ := a5.LocatePage(0)
	faults[dev].Fail()
	if _, err := a5.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	// Reads and writes keep working degraded.
	if _, err := a5.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	// A second failure is unrecoverable.
	faults[(dev+1)%4].Fail()
	if _, err := a5.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("double failure err = %v", err)
	}
}

func TestRAID0FailureIsFatal(t *testing.T) {
	a0, faults := newArray(t, Level0, blockdev.PageSize, 4)
	faults[0].Fail()
	if _, err := a0.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("RAID-0 degraded read err = %v", err)
	}
}

func TestWriteTaggedParityConsistency(t *testing.T) {
	a5, _ := newArray(t, Level5, blockdev.PageSize, 4)
	tags := []blockdev.Tag{blockdev.DataTag(0, 1), blockdev.DataTag(1, 1), blockdev.DataTag(2, 1)}
	if _, err := a5.WriteTagged(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 3 * blockdev.PageSize}, tags); err != nil {
		t.Fatal(err)
	}
	// Every lost member must be reconstructable from the survivors.
	for lpage := int64(0); lpage < 3; lpage++ {
		dev, dpage := a5.LocatePage(lpage)
		got, err := a5.ReconstructTag(dev, dpage)
		if err != nil {
			t.Fatal(err)
		}
		if got != tags[lpage] {
			t.Fatalf("page %d reconstructed %v, want %v", lpage, got, tags[lpage])
		}
	}
}

func TestWriteTaggedMirrorReconstruct(t *testing.T) {
	a1, _ := newArray(t, Level1, blockdev.PageSize, 4)
	tag := blockdev.DataTag(7, 3)
	if _, err := a1.WriteTagged(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize}, []blockdev.Tag{tag}); err != nil {
		t.Fatal(err)
	}
	dev, dpage := a1.LocatePage(0)
	got, err := a1.ReconstructTag(dev, dpage)
	if err != nil || got != tag {
		t.Fatalf("mirror reconstruct = %v, %v", got, err)
	}
}

func TestWriteTaggedPropertyRandomPages(t *testing.T) {
	a5, _ := newArray(t, Level5, blockdev.PageSize, 4)
	pages := a5.Capacity() / blockdev.PageSize
	var at vtime.Time
	f := func(rawPage uint16, version uint8) bool {
		lpage := int64(rawPage) % pages
		tag := blockdev.DataTag(lpage, uint64(version)+1)
		done, err := a5.WriteTagged(at, blockdev.Request{
			Op: blockdev.OpWrite, Off: lpage * blockdev.PageSize, Len: blockdev.PageSize,
		}, []blockdev.Tag{tag})
		if err != nil {
			return false
		}
		at = done
		dev, dpage := a5.LocatePage(lpage)
		got, err := a5.ReconstructTag(dev, dpage)
		return err == nil && got == tag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildStreams(t *testing.T) {
	a5, faults := newArray(t, Level5, blockdev.PageSize, 4)
	faults[2].Fail()
	faults[2].Repair()
	done, err := a5.Rebuild(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatalf("rebuild completed at %v", done)
	}
	if faults[2].Stats().WriteOps == 0 {
		t.Fatal("rebuild wrote nothing to target")
	}
	if faults[0].Stats().ReadOps == 0 {
		t.Fatal("rebuild read nothing from survivors")
	}
	if _, err := a5.Rebuild(0, 9); err == nil {
		t.Fatal("rebuild accepted unknown device")
	}
}

func TestFlushAndTrimForward(t *testing.T) {
	a5, faults := newArray(t, Level5, blockdev.PageSize, 4)
	if _, err := a5.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 3 * blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	if _, err := a5.Flush(0); err != nil {
		t.Fatal(err)
	}
	for i, f := range faults {
		if f.Stats().Flushes != 1 {
			t.Fatalf("device %d flushes = %d", i, f.Stats().Flushes)
		}
	}
	if _, err := a5.Submit(0, blockdev.Request{Op: blockdev.OpTrim, Off: 0, Len: 3 * blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	for i, f := range faults {
		if f.Stats().TrimOps != 1 {
			t.Fatalf("device %d trims = %d", i, f.Stats().TrimOps)
		}
	}
	// Flush with a failed member succeeds on the survivors.
	faults[1].Fail()
	if _, err := a5.Flush(0); err != nil {
		t.Fatalf("degraded flush: %v", err)
	}
}

func TestDeviceBytesAmplification(t *testing.T) {
	a5, _ := newArray(t, Level5, blockdev.PageSize, 4)
	// One full stripe: 3 pages logical -> 4 pages physical.
	if _, err := a5.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 3 * blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	if got, want := a5.DeviceBytes(), int64(4*blockdev.PageSize); got != want {
		t.Fatalf("device bytes = %d, want %d", got, want)
	}
}

func TestTransientRetryAndBudget(t *testing.T) {
	a, faults := newArray(t, Level5, blockdev.PageSize, 4)
	at := vtime.Time(0)
	done, err := a.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 3 * blockdev.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	// Two transient errors correct within the default 3-retry bound; the
	// corrected event costs one budget error.
	faults[0].InjectTransient(2)
	if _, err := a.Submit(done, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatalf("corrected transient read: %v", err)
	}
	if n := a.DeviceErrors(0); n != 1 {
		t.Fatalf("budget charge %d, want 1", n)
	}
	if a.Down(0) {
		t.Fatal("corrected transient kicked the member")
	}
	// A budget of 1 means the next charged error kicks the member; reads
	// still succeed via reconstruction.
	a.SetErrorBudget(1)
	faults[0].InjectTransient(4) // initial try + 3 retries all fail
	if _, err := a.Submit(done, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatalf("degraded read after exhausted retries: %v", err)
	}
	if !a.Down(0) {
		t.Fatal("exhausted budget did not kick the member")
	}
	// Rebuild re-admits the member with a fresh budget.
	if _, err := a.Rebuild(done, 0); err != nil {
		t.Fatal(err)
	}
	if a.Down(0) || a.DeviceErrors(0) != 0 {
		t.Fatal("rebuild did not re-admit the member")
	}
}

func TestUnreadableReadRepairsInPlace(t *testing.T) {
	a, faults := newArray(t, Level5, blockdev.PageSize, 4)
	at := vtime.Time(0)
	done, err := a.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 3 * blockdev.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	dev, dpage := a.LocatePage(0)
	faults[dev].InjectUnreadable(dpage)
	if _, err := a.Submit(done, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatalf("read over latent sector error: %v", err)
	}
	// The fix_read_error write-back cleared the bad sector.
	if n := faults[dev].UnreadablePages(); n != 0 {
		t.Fatalf("%d pages still unreadable after repair write-back", n)
	}
	if n := a.DeviceErrors(dev); n != 1 {
		t.Fatalf("budget charge %d, want 1", n)
	}
	// The repaired chunk reads directly again: no survivor traffic.
	other := (dev + 1) % 4
	before := faults[other].Stats().ReadOps
	if _, err := a.Submit(done, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	if faults[other].Stats().ReadOps != before {
		t.Fatal("repaired chunk still reads via reconstruction")
	}
}
