// Package raid implements software RAID over blockdev.Devices: levels 0, 1
// (mirrored pairs, i.e. RAID-10 when more than one pair), 4, and 5. It
// reproduces the behaviours the paper's baseline experiments depend on —
// the read-modify-write small-write penalty of parity RAID, full-stripe
// write optimization, degraded reads through reconstruction, and rebuild
// onto a replacement drive.
//
// The paper's own SRC cache does NOT use this package: SRC performs its own
// log-structured striping (internal/src). This package underpins the
// Bcache/Flashcache baselines ("Bcache5"/"Flashcache5") and the RAID-10
// primary storage.
package raid

import (
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Level selects the RAID layout.
type Level int

// Supported levels. Level1 arranges devices as mirrored pairs with chunks
// striped across the pairs, so with 4 devices it is what storage vendors
// call RAID-10 (the paper's primary storage) and with 2 devices classic
// RAID-1. Level10 is an alias for that layout.
const (
	Level0 Level = iota + 1
	Level1
	Level4
	Level5
	Level10 = Level1
)

// String names the level as in the paper.
func (l Level) String() string {
	switch l {
	case Level0:
		return "RAID-0"
	case Level1:
		return "RAID-1"
	case Level4:
		return "RAID-4"
	case Level5:
		return "RAID-5"
	default:
		return fmt.Sprintf("RAID(%d)", int(l))
	}
}

// ErrDegraded reports an unrecoverable read (more failures than redundancy).
var ErrDegraded = errors.New("raid: data unrecoverable")

// Array is a RAID volume over equal-sized devices.
type Array struct {
	level Level
	chunk int64
	devs  []blockdev.Device

	devCap    int64
	capacity  int64
	dataDevs  int // data chunks per stripe
	pairCount int // Level1 only

	retryLimit int            // bounded retries for transient member errors
	retryDelay vtime.Duration // backoff before the first retry, doubling
	errBudget  int64          // corrected errors before a member is kicked
	errCount   []int64
	down       []bool // members kicked by the error budget (md-style)

	stats blockdev.Stats
	cont  *blockdev.Content
}

var _ blockdev.Device = (*Array)(nil)

// New assembles an array. All devices must have equal capacity, a multiple
// of the chunk size; the chunk size must be a multiple of the page size.
func New(level Level, chunk int64, devs []blockdev.Device) (*Array, error) {
	if len(devs) < 2 {
		return nil, fmt.Errorf("raid: need at least 2 devices, have %d", len(devs))
	}
	if chunk <= 0 || chunk%blockdev.PageSize != 0 {
		return nil, fmt.Errorf("raid: chunk %d must be a positive multiple of page size", chunk)
	}
	devCap := devs[0].Capacity()
	for i, d := range devs {
		if d.Capacity() != devCap {
			return nil, fmt.Errorf("raid: device %d capacity %d != %d", i, d.Capacity(), devCap)
		}
	}
	if devCap%chunk != 0 {
		return nil, fmt.Errorf("raid: device capacity %d not a multiple of chunk %d", devCap, chunk)
	}
	a := &Array{
		level: level, chunk: chunk, devs: devs, devCap: devCap,
		retryLimit: 3,
		retryDelay: 100 * vtime.Microsecond,
		errBudget:  20,
		errCount:   make([]int64, len(devs)),
		down:       make([]bool, len(devs)),
	}
	switch level {
	case Level0:
		a.dataDevs = len(devs)
		a.capacity = int64(len(devs)) * devCap
	case Level1:
		if len(devs)%2 != 0 {
			return nil, fmt.Errorf("raid: %v needs an even device count, have %d", level, len(devs))
		}
		a.pairCount = len(devs) / 2
		a.dataDevs = a.pairCount
		a.capacity = int64(a.pairCount) * devCap
	case Level4, Level5:
		if len(devs) < 3 {
			return nil, fmt.Errorf("raid: %v needs at least 3 devices, have %d", level, len(devs))
		}
		a.dataDevs = len(devs) - 1
		a.capacity = int64(a.dataDevs) * devCap
	default:
		return nil, fmt.Errorf("raid: unsupported level %v", level)
	}
	a.cont = blockdev.NewContent(a.capacity)
	return a, nil
}

// Level reports the array's level.
func (a *Array) Level() Level { return a.level }

// ChunkSize reports the stripe chunk size in bytes.
func (a *Array) ChunkSize() int64 { return a.chunk }

// Capacity reports the usable (logical) size in bytes.
func (a *Array) Capacity() int64 { return a.capacity }

// Stats reports logical traffic counters (caller-visible requests, not the
// amplified per-device traffic; device stats live on the children).
func (a *Array) Stats() *blockdev.Stats { return &a.stats }

// Content exposes the logical content store.
func (a *Array) Content() *blockdev.Content { return a.cont }

// Devices returns the member devices (for per-device stats and fault
// injection).
func (a *Array) Devices() []blockdev.Device { return a.devs }

// DeviceBytes sums member read+write traffic — the amplified physical I/O.
func (a *Array) DeviceBytes() int64 {
	var n int64
	for _, d := range a.devs {
		n += d.Stats().TotalBytes()
	}
	return n
}

// parityDev reports which device holds the parity chunk of stripe s.
func (a *Array) parityDev(s int64) int {
	if a.level == Level4 {
		return len(a.devs) - 1
	}
	// Left-symmetric rotation for RAID-5.
	return len(a.devs) - 1 - int(s%int64(len(a.devs)))
}

// dataDev reports which device holds data position pos of stripe s.
func (a *Array) dataDev(s int64, pos int) int {
	switch a.level {
	case Level0:
		return pos
	case Level1:
		return 2 * pos
	default:
		p := a.parityDev(s)
		if pos < p {
			return pos
		}
		return pos + 1
	}
}

// locate maps a logical chunk index to (stripe, data position).
func (a *Array) locate(lchunk int64) (stripe int64, pos int) {
	return lchunk / int64(a.dataDevs), int(lchunk % int64(a.dataDevs))
}

// LocatePage maps a logical page to (device index, device page index) —
// exposed for content bookkeeping and tests.
func (a *Array) LocatePage(lpage int64) (dev int, dpage int64) {
	off := lpage * blockdev.PageSize
	stripe, pos := a.locate(off / a.chunk)
	dev = a.dataDev(stripe, pos)
	dpage = (stripe*a.chunk + off%a.chunk) / blockdev.PageSize
	return dev, dpage
}

// mirror reports the mirror partner of device d under Level1.
func mirror(d int) int { return d ^ 1 }

// SetRetryPolicy overrides the transient-error retry bound and initial
// backoff (defaults: 3 retries, 100 µs doubling).
func (a *Array) SetRetryPolicy(limit int, delay vtime.Duration) {
	a.retryLimit = limit
	a.retryDelay = delay
}

// SetErrorBudget overrides the md-style per-member corrected-error budget
// (default 20). A member that exhausts it is kicked from the array until
// Rebuild re-admits it.
func (a *Array) SetErrorBudget(n int64) { a.errBudget = n }

// Down reports whether member d has been kicked by the error budget.
func (a *Array) Down(d int) bool { return d >= 0 && d < len(a.down) && a.down[d] }

// DeviceErrors reports the corrected errors charged against member d since
// assembly or its last rebuild.
func (a *Array) DeviceErrors(d int) int64 {
	if d < 0 || d >= len(a.errCount) {
		return 0
	}
	return a.errCount[d]
}

// noteErr charges one corrected error against member d, kicking it when the
// budget is exhausted.
func (a *Array) noteErr(d int) {
	a.errCount[d]++
	if a.errCount[d] >= a.errBudget {
		a.down[d] = true
	}
}

// submitDev issues one request to member device d, retrying transient errors
// with exponential virtual-time backoff and charging corrected errors
// against the member's budget.
func (a *Array) submitDev(at vtime.Time, d int, op blockdev.Op, off, n int64) (vtime.Time, error) {
	if a.down[d] {
		return at, fmt.Errorf("%w: member %d kicked by error budget", blockdev.ErrDeviceFailed, d)
	}
	req := blockdev.Request{Op: op, Off: off, Len: n}
	t, err := a.devs[d].Submit(at, req)
	attempts := 0
	for errors.Is(err, blockdev.ErrTransient) {
		if attempts >= a.retryLimit {
			a.noteErr(d)
			return at, fmt.Errorf("%w: member %d still transient after %d retries", blockdev.ErrDeviceFailed, d, attempts)
		}
		at = at.Add(a.retryDelay << attempts)
		attempts++
		t, err = a.devs[d].Submit(at, req)
	}
	if attempts > 0 && err == nil {
		a.noteErr(d) // corrected after retrying: one budget error, md-style
	}
	if errors.Is(err, blockdev.ErrUnreadable) {
		a.noteErr(d)
	}
	return t, err
}

// Submit schedules a logical request and returns its completion time.
func (a *Array) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	if err := req.Validate(a.capacity); err != nil {
		return at, err
	}
	a.stats.Record(req)
	switch req.Op {
	case blockdev.OpTrim:
		return a.trim(at, req)
	case blockdev.OpRead:
		return a.read(at, req)
	default:
		return a.write(at, req)
	}
}

// Flush flushes every member and completes when the last one drains.
func (a *Array) Flush(at vtime.Time) (vtime.Time, error) {
	a.stats.Flushes++
	a.cont.FlushContent()
	done := at
	for i, d := range a.devs {
		if a.down[i] {
			continue // kicked members take no further commands
		}
		fd, err := d.Flush(at)
		if err != nil {
			if errors.Is(err, blockdev.ErrDeviceFailed) {
				continue // flush of a failed member is moot
			}
			return at, err
		}
		done = vtime.Max(done, fd)
	}
	return done, nil
}

// trim forwards a logical trim to the member ranges it covers, including
// parity, at stripe granularity.
func (a *Array) trim(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	stripeData := a.chunk * int64(a.dataDevs)
	s0 := req.Off / stripeData
	s1 := (req.Off + req.Len - 1) / stripeData
	off := s0 * a.chunk
	n := (s1 - s0 + 1) * a.chunk
	done := at
	for d := range a.devs {
		td, err := a.submitDev(at, d, blockdev.OpTrim, off, n)
		if err != nil {
			if errors.Is(err, blockdev.ErrDeviceFailed) {
				continue
			}
			return at, err
		}
		done = vtime.Max(done, td)
	}
	if err := a.cont.Trim(req.Off/blockdev.PageSize, req.Pages()); err != nil {
		return at, err
	}
	return done, nil
}
