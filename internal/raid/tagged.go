package raid

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// WriteTagged performs Submit for a write request and additionally records
// page tags on the member devices' content stores, keeping parity (or
// mirror) content consistent. This is the path integrity and reconstruction
// tests use; performance experiments use plain Submit, which skips content
// bookkeeping.
func (a *Array) WriteTagged(at vtime.Time, req blockdev.Request, tags []blockdev.Tag) (vtime.Time, error) {
	if req.Op != blockdev.OpWrite {
		return at, fmt.Errorf("%w: WriteTagged requires a write", blockdev.ErrBadRequest)
	}
	if int64(len(tags)) != req.Pages() {
		return at, fmt.Errorf("%w: %d tags for %d pages", blockdev.ErrBadRequest, len(tags), req.Pages())
	}
	done, err := a.Submit(at, req)
	if err != nil {
		return done, err
	}
	first := req.Off / blockdev.PageSize
	for i, tag := range tags {
		lpage := first + int64(i)
		if err := a.cont.WriteTag(lpage, tag); err != nil {
			return done, err
		}
		dev, dpage := a.LocatePage(lpage)
		if err := a.devs[dev].Content().WriteTag(dpage, tag); err != nil {
			return done, err
		}
		switch a.level {
		case Level1:
			if err := a.devs[mirror(dev)].Content().WriteTag(dpage, tag); err != nil {
				return done, err
			}
		case Level4, Level5:
			if err := a.updateParityTag(lpage, dpage); err != nil {
				return done, err
			}
		}
	}
	return done, nil
}

// updateParityTag recomputes the parity tag covering device page dpage.
func (a *Array) updateParityTag(lpage, dpage int64) error {
	stripe := dpage * blockdev.PageSize / a.chunk
	p := a.parityDev(stripe)
	var parity blockdev.Tag
	for d := range a.devs {
		if d == p {
			continue
		}
		t, err := a.devs[d].Content().ReadTag(dpage)
		if err != nil {
			return err
		}
		parity = parity.XOR(t)
	}
	return a.devs[p].Content().WriteTag(dpage, parity)
}

// ReconstructTag recomputes the tag stored at device page dpage of member
// dev from the surviving members — the content-level counterpart of a
// degraded read.
func (a *Array) ReconstructTag(dev int, dpage int64) (blockdev.Tag, error) {
	switch a.level {
	case Level0:
		return blockdev.ZeroTag, fmt.Errorf("%w: %v has no redundancy", ErrDegraded, a.level)
	case Level1:
		return a.devs[mirror(dev)].Content().ReadTag(dpage)
	default:
		var tag blockdev.Tag
		for d := range a.devs {
			if d == dev {
				continue
			}
			t, err := a.devs[d].Content().ReadTag(dpage)
			if err != nil {
				return blockdev.ZeroTag, err
			}
			tag = tag.XOR(t)
		}
		return tag, nil
	}
}
