package raid

import (
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// span is a contiguous byte range on one member device.
type span struct {
	dev int
	off int64
	n   int64
}

// dataSpans maps a logical byte range to per-device whole-chunk spans,
// merging adjacent chunks so large requests become one command per device
// (block-layer request merging). Parity chunks are not included.
func (a *Array) dataSpans(off, n int64) []span {
	c0 := off / a.chunk
	c1 := (off + n - 1) / a.chunk
	spans := make([]span, 0, len(a.devs))
	for c := c0; c <= c1; c++ {
		s, pos := a.locate(c)
		d := a.dataDev(s, pos)
		dOff := s * a.chunk
		merged := false
		for i := range spans {
			if spans[i].dev == d && spans[i].off+spans[i].n == dOff {
				spans[i].n += a.chunk
				merged = true
				break
			}
		}
		if !merged {
			spans = append(spans, span{dev: d, off: dOff, n: a.chunk})
		}
	}
	return spans
}

// read serves a logical read, reconstructing around failed members where
// redundancy allows.
func (a *Array) read(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	done := at
	for _, sp := range a.dataSpans(req.Off, req.Len) {
		t, err := a.submitDev(at, sp.dev, blockdev.OpRead, sp.off, sp.n)
		if err == nil {
			done = vtime.Max(done, t)
			continue
		}
		if errors.Is(err, blockdev.ErrUnreadable) {
			// Latent sector error: serve the span from redundancy and
			// rewrite it in place, clearing the error (md's
			// fix_read_error path).
			t, rerr := a.reconstructRead(at, sp)
			if rerr != nil {
				return at, rerr
			}
			wt, werr := a.submitDev(t, sp.dev, blockdev.OpWrite, sp.off, sp.n)
			if werr != nil && !errors.Is(werr, blockdev.ErrDeviceFailed) {
				return at, werr
			}
			if werr == nil {
				t = wt
			}
			done = vtime.Max(done, t)
			continue
		}
		if !errors.Is(err, blockdev.ErrDeviceFailed) {
			return at, err
		}
		t, err = a.reconstructRead(at, sp)
		if err != nil {
			return at, err
		}
		done = vtime.Max(done, t)
	}
	return done, nil
}

// reconstructRead serves one failed-member span from redundancy: the mirror
// partner under Level1, or all surviving chunks under parity RAID.
func (a *Array) reconstructRead(at vtime.Time, sp span) (vtime.Time, error) {
	switch a.level {
	case Level0:
		return at, fmt.Errorf("%w: %v device %d", ErrDegraded, a.level, sp.dev)
	case Level1:
		t, err := a.submitDev(at, mirror(sp.dev), blockdev.OpRead, sp.off, sp.n)
		if err != nil {
			return at, fmt.Errorf("%w: both mirrors of pair %d", ErrDegraded, sp.dev/2)
		}
		return t, nil
	default:
		done := at
		for d := range a.devs {
			if d == sp.dev {
				continue
			}
			t, err := a.submitDev(at, d, blockdev.OpRead, sp.off, sp.n)
			if err != nil {
				return at, fmt.Errorf("%w: second failure on device %d", ErrDegraded, d)
			}
			done = vtime.Max(done, t)
		}
		return done, nil
	}
}

// write serves a logical write.
func (a *Array) write(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	switch a.level {
	case Level0:
		done := at
		for _, sp := range a.dataSpans(req.Off, req.Len) {
			t, err := a.submitDev(at, sp.dev, blockdev.OpWrite, sp.off, sp.n)
			if err != nil {
				return at, err
			}
			done = vtime.Max(done, t)
		}
		return done, nil
	case Level1:
		done := at
		for _, sp := range a.dataSpans(req.Off, req.Len) {
			okOne := false
			for _, d := range [2]int{sp.dev, mirror(sp.dev)} {
				t, err := a.submitDev(at, d, blockdev.OpWrite, sp.off, sp.n)
				if err != nil {
					if errors.Is(err, blockdev.ErrDeviceFailed) {
						continue
					}
					return at, err
				}
				okOne = true
				done = vtime.Max(done, t)
			}
			if !okOne {
				return at, fmt.Errorf("%w: both mirrors of pair %d", ErrDegraded, sp.dev/2)
			}
		}
		return done, nil
	default:
		return a.parityWrite(at, req)
	}
}

// parityWrite serves a write under RAID-4/5: full stripes are written in one
// pass with freshly computed parity (no reads); partially covered stripes
// pay the read-modify-write penalty.
func (a *Array) parityWrite(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	c0 := req.Off / a.chunk
	c1 := (req.Off + req.Len - 1) / a.chunk
	s0 := c0 / int64(a.dataDevs)
	s1 := c1 / int64(a.dataDevs)

	// A stripe is "full" when every one of its data chunks is covered (the
	// array operates at whole-chunk granularity). Full stripes form one
	// contiguous run in the middle of the request.
	fullFrom, fullTo := int64(-1), int64(-2)
	for s := s0; s <= s1; s++ {
		if s*int64(a.dataDevs) >= c0 && (s+1)*int64(a.dataDevs)-1 <= c1 {
			if fullFrom < 0 {
				fullFrom = s
			}
			fullTo = s
		}
	}

	done := at
	for s := s0; s <= s1; s++ {
		if s >= fullFrom && s <= fullTo {
			continue // handled by the coalesced full run below
		}
		t, err := a.rmwStripe(at, s, c0, c1)
		if err != nil {
			return at, err
		}
		done = vtime.Max(done, t)
	}
	if fullFrom >= 0 {
		off := fullFrom * a.chunk
		n := (fullTo - fullFrom + 1) * a.chunk
		for d := range a.devs {
			t, err := a.submitDev(at, d, blockdev.OpWrite, off, n)
			if err != nil {
				if errors.Is(err, blockdev.ErrDeviceFailed) {
					continue // parity protects the missing member
				}
				return at, err
			}
			done = vtime.Max(done, t)
		}
	}
	return done, nil
}

// rmwStripe updates the covered chunks of stripe s via read-modify-write:
// read old data and parity, then write new data and parity.
func (a *Array) rmwStripe(at vtime.Time, s int64, c0, c1 int64) (vtime.Time, error) {
	p := a.parityDev(s)
	dOff := s * a.chunk
	var touched []int
	for pos := 0; pos < a.dataDevs; pos++ {
		c := s*int64(a.dataDevs) + int64(pos)
		if c >= c0 && c <= c1 {
			touched = append(touched, pos)
		}
	}

	readDone := at
	degraded := false
	readOne := func(d int) error {
		t, err := a.submitDev(at, d, blockdev.OpRead, dOff, a.chunk)
		if err != nil {
			// A latent sector error also forces full-stripe reconstruction;
			// the write phase below overwrites the bad chunk, clearing it.
			if errors.Is(err, blockdev.ErrDeviceFailed) || errors.Is(err, blockdev.ErrUnreadable) {
				degraded = true
				return nil
			}
			return err
		}
		readDone = vtime.Max(readDone, t)
		return nil
	}
	for _, pos := range touched {
		if err := readOne(a.dataDev(s, pos)); err != nil {
			return at, err
		}
	}
	if err := readOne(p); err != nil {
		return at, err
	}
	if degraded {
		// A member is gone: reconstruct by reading every survivor.
		for d := range a.devs {
			t, err := a.submitDev(at, d, blockdev.OpRead, dOff, a.chunk)
			if err != nil && !errors.Is(err, blockdev.ErrDeviceFailed) && !errors.Is(err, blockdev.ErrUnreadable) {
				return at, err
			}
			if err == nil {
				readDone = vtime.Max(readDone, t)
			}
		}
	}

	writeDone := readDone
	writeOne := func(d int) error {
		t, err := a.submitDev(readDone, d, blockdev.OpWrite, dOff, a.chunk)
		if err != nil {
			if errors.Is(err, blockdev.ErrDeviceFailed) {
				return nil
			}
			return err
		}
		writeDone = vtime.Max(writeDone, t)
		return nil
	}
	for _, pos := range touched {
		if err := writeOne(a.dataDev(s, pos)); err != nil {
			return at, err
		}
	}
	if err := writeOne(p); err != nil {
		return at, err
	}
	return writeDone, nil
}

// Rebuild reconstructs the content role of member dev by streaming every
// chunk range from the survivors and writing it to the (repaired or
// replaced) device. It returns the completion time. The unit is 1 MiB of
// device range per pass to model a realistic rebuild stream.
func (a *Array) Rebuild(at vtime.Time, dev int) (vtime.Time, error) {
	if dev < 0 || dev >= len(a.devs) {
		return at, fmt.Errorf("raid: rebuild of unknown device %d", dev)
	}
	// Re-admit the member: its error budget restarts fresh.
	a.errCount[dev] = 0
	a.down[dev] = false
	unit := int64(1 << 20)
	if unit > a.devCap {
		unit = a.devCap
	}
	cursor := at
	for off := int64(0); off < a.devCap; off += unit {
		n := unit
		if off+n > a.devCap {
			n = a.devCap - off
		}
		readDone := cursor
		switch a.level {
		case Level1:
			t, err := a.submitDev(cursor, mirror(dev), blockdev.OpRead, off, n)
			if err != nil {
				return at, fmt.Errorf("rebuild source: %w", err)
			}
			readDone = t
		default:
			for d := range a.devs {
				if d == dev {
					continue
				}
				t, err := a.submitDev(cursor, d, blockdev.OpRead, off, n)
				if err != nil {
					return at, fmt.Errorf("rebuild source %d: %w", d, err)
				}
				readDone = vtime.Max(readDone, t)
			}
		}
		t, err := a.submitDev(readDone, dev, blockdev.OpWrite, off, n)
		if err != nil {
			return at, fmt.Errorf("rebuild target: %w", err)
		}
		cursor = t
	}
	return cursor, nil
}
