package engine

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/src"
	"srccache/internal/vtime"
)

// ShardSpec sizes the memory-backed shard caches MemShardBuilder produces.
// The defaults give a small, GC-exercising cache: 4 SSDs striped RAID-5,
// 4 MiB erase groups, cache one quarter of the shard's primary span.
type ShardSpec struct {
	// ShardBytes is the per-shard primary capacity (required, a multiple
	// of the engine stripe size).
	ShardBytes int64
	// SSDs per shard (default 4; RAID-5 needs at least 3).
	SSDs int
	// CachePerSSD is the cache region per SSD (default ShardBytes/16,
	// rounded up to an erase-group multiple with the 4-group minimum).
	CachePerSSD int64
	// EraseGroupSize (default 4 MiB) and SegmentColumn (default 64 KiB)
	// shrink the paper's units so small shards still cycle through GC.
	EraseGroupSize int64
	SegmentColumn  int64
	// DeviceLatency is the per-op latency of the simulated devices
	// (default 0: the wall-clock benchmark measures engine CPU cost, not
	// simulated device time).
	DeviceLatency vtime.Duration
	// Mutate, when non-nil, adjusts the assembled config (policies,
	// flush cadence) before the cache is built.
	Mutate func(*src.Config)
}

func (s ShardSpec) withDefaults() ShardSpec {
	if s.SSDs == 0 {
		s.SSDs = 4
	}
	if s.EraseGroupSize == 0 {
		s.EraseGroupSize = 4 << 20
	}
	if s.SegmentColumn == 0 {
		s.SegmentColumn = 64 << 10
	}
	if s.CachePerSSD == 0 {
		s.CachePerSSD = s.ShardBytes / 16
	}
	// Round up to an erase-group multiple, superblock + 3 working groups
	// minimum.
	if rem := s.CachePerSSD % s.EraseGroupSize; rem != 0 {
		s.CachePerSSD += s.EraseGroupSize - rem
	}
	if min := 4 * s.EraseGroupSize; s.CachePerSSD < min {
		s.CachePerSSD = min
	}
	return s
}

// MemShardBuilder returns a New-compatible builder producing identical
// memory-backed shard caches: a MemDevice primary of ShardBytes and SSDs
// MemDevices carrying the SRC layout. Used by netblockd's engine mode, the
// benchmark suite, and tests.
func MemShardBuilder(spec ShardSpec) (func(i int) (*src.Cache, error), error) {
	spec = spec.withDefaults()
	if spec.ShardBytes <= 0 || spec.ShardBytes%blockdev.PageSize != 0 {
		return nil, fmt.Errorf("engine: shard bytes %d must be a positive page multiple", spec.ShardBytes)
	}
	return func(i int) (*src.Cache, error) {
		ssds := make([]blockdev.Device, spec.SSDs)
		for j := range ssds {
			ssds[j] = blockdev.NewMemDevice(spec.CachePerSSD, spec.DeviceLatency)
		}
		cfg := src.Config{
			SSDs:           ssds,
			Primary:        blockdev.NewMemDevice(spec.ShardBytes, spec.DeviceLatency),
			CachePerSSD:    spec.CachePerSSD,
			EraseGroupSize: spec.EraseGroupSize,
			SegmentColumn:  spec.SegmentColumn,
		}
		if spec.Mutate != nil {
			spec.Mutate(&cfg)
		}
		return src.New(cfg)
	}, nil
}
