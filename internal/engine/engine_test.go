package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

// testEngine builds a small payload engine: shards × 8 MiB primaries,
// 1 MiB erase groups, 64 pages per stripe so requests cross shard
// boundaries often.
func testEngine(t *testing.T, shards int, payload bool) *Engine {
	t.Helper()
	build, err := MemShardBuilder(ShardSpec{
		ShardBytes:     8 << 20,
		EraseGroupSize: 1 << 20,
		SegmentColumn:  32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Options{Shards: shards, StripePages: 64, Payload: payload}, build)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRouteIsABijection(t *testing.T) {
	e := testEngine(t, 4, false)
	tab := e.tab.Load()
	seen := make(map[[2]int64]int64)
	// Walk every stripe boundary page and some interior pages.
	for off := int64(0); off < e.Size(); off += tab.stripeBytes / 2 {
		sh, local := tab.route(off)
		if local < 0 || local >= tab.shardBytes {
			t.Fatalf("off %d → shard %d local %d outside shard of %d bytes", off, sh, local, tab.shardBytes)
		}
		key := [2]int64{int64(sh), local}
		if prev, dup := seen[key]; dup {
			t.Fatalf("offsets %d and %d both map to shard %d local %d", prev, off, sh, local)
		}
		seen[key] = off
	}
}

func TestSerialIsDeterministic(t *testing.T) {
	run := func() ([]vtime.Time, int64) {
		e := testEngine(t, 4, false)
		s := e.Serial()
		g, err := workload.NewGenerator(workload.Config{
			Pattern: workload.Zipf, Span: e.Size(), ReadFraction: 0.5, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		var times []vtime.Time
		at := vtime.Time(0)
		for i := 0; i < 5000; i++ {
			req, _ := g.Next()
			done, err := s.Submit(at, req)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, done)
			at = vtime.Max(at, done)
		}
		c := s.Counters()
		return times, c.ReadHits
	}
	t1, h1 := run()
	t2, h2 := run()
	if h1 != h2 {
		t.Fatalf("hit counts differ: %d vs %d", h1, h2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("completion %d differs: %v vs %v", i, t1[i], t2[i])
		}
	}
}

// TestConcurrentMatchesSerial drives the same single-client request stream
// through a serial engine and a started engine. A single submitter
// preserves per-shard op order, and shards share nothing, so every shard's
// counters — hits, misses, fills, destages — must match exactly.
func TestConcurrentMatchesSerial(t *testing.T) {
	const shards = 4
	stream := func() []blockdev.Request {
		g, err := workload.NewGenerator(workload.Config{
			Pattern: workload.Zipf, Span: 8 << 20 * shards, ReadFraction: 0.4,
			RequestBytes: 8192, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]blockdev.Request, 20000)
		for i := range reqs {
			reqs[i], _ = g.Next()
		}
		return reqs
	}()

	serialEng := testEngine(t, shards, false)
	ser := serialEng.Serial()
	for _, r := range stream {
		if _, err := ser.Submit(0, r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ser.Flush(0); err != nil {
		t.Fatal(err)
	}

	conc := testEngine(t, shards, false)
	if err := conc.Start(); err != nil {
		t.Fatal(err)
	}
	defer conc.Close()
	const batch = 128
	for i := 0; i < len(stream); i += batch {
		end := i + batch
		if end > len(stream) {
			end = len(stream)
		}
		reqs := make([]Request, 0, end-i)
		for _, r := range stream[i:end] {
			reqs = append(reqs, Request{Op: r.Op, Off: r.Off, Len: r.Len})
		}
		if err := conc.SubmitBatch(reqs); err != nil {
			t.Fatal(err)
		}
	}
	if err := conc.Flush(); err != nil {
		t.Fatal(err)
	}

	want := ser.Counters()
	got, err := conc.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("concurrent counters diverge from serial:\n got %+v\nwant %+v", got, want)
	}
}

// TestPayloadIntegrity checks the sharded byte store against a flat
// reference model across stripe-crossing, unaligned, and trimmed ranges.
func TestPayloadIntegrity(t *testing.T) {
	e := testEngine(t, 4, true)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ref := make([]byte, e.Size())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 600; i++ {
		off := rng.Int63n(e.Size() - 1)
		n := 1 + rng.Int63n(min64(600<<10, e.Size()-off)-1+1)
		switch rng.Intn(3) {
		case 0:
			p := make([]byte, n)
			rng.Read(p)
			if err := e.WriteAt(p, off); err != nil {
				t.Fatalf("write [%d,%d): %v", off, off+n, err)
			}
			copy(ref[off:off+n], p)
		case 1:
			if err := e.Trim(off, n); err != nil {
				t.Fatalf("trim [%d,%d): %v", off, off+n, err)
			}
			for j := off; j < off+n; j++ {
				ref[j] = 0
			}
		default:
			p := make([]byte, n)
			if err := e.ReadAt(p, off); err != nil {
				t.Fatalf("read [%d,%d): %v", off, off+n, err)
			}
			if !bytes.Equal(p, ref[off:off+n]) {
				t.Fatalf("read [%d,%d) diverges from reference", off, off+n)
			}
		}
	}
	// Full-volume readback.
	got := make([]byte, e.Size())
	if err := e.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("full volume diverges from reference")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestValidation(t *testing.T) {
	e := testEngine(t, 2, false)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cases := []Request{
		{Op: blockdev.OpRead, Off: -1, Len: 8},
		{Op: blockdev.OpRead, Off: 0, Len: 0},
		{Op: blockdev.OpRead, Off: e.Size(), Len: 1},
		{Op: blockdev.OpRead, Off: e.Size() - 4, Len: 8},
		{Op: blockdev.Op(9), Off: 0, Len: 8},
		{Op: blockdev.OpWrite, Off: 0, Len: 8, Data: make([]byte, 4)},
	}
	for _, req := range cases {
		if err := e.Do(req); err == nil {
			t.Fatalf("accepted %+v", req)
		}
	}
}

func TestSerialRefusedAfterStart(t *testing.T) {
	e := testEngine(t, 2, false)
	s := e.Serial()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := s.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: 4096}); !errors.Is(err, ErrStarted) {
		t.Fatalf("serial submit after start: %v", err)
	}
	// The read-side accessors race with the worker loops once Start has
	// handed the shards off, so they must refuse too (by panicking: unlike
	// Submit they have no error result to return).
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Serial.%s after Start did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Counters", func() { s.Counters() })
	mustPanic("CacheDevices", func() { s.CacheDevices() })
	mustPanic("ShardCounters", func() { s.ShardCounters(0) })
}

func TestCloseRejectsNewWork(t *testing.T) {
	e := testEngine(t, 2, true)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteAt([]byte("y"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

func TestConcurrentRequiresStart(t *testing.T) {
	e := testEngine(t, 2, false)
	if err := e.Do(Request{Op: blockdev.OpRead, Off: 0, Len: 4096}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("do before start: %v", err)
	}
	if _, err := e.Counters(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("counters before start: %v", err)
	}
}
