package engine

import (
	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Serial is the deterministic virtual-time view of an engine: the same
// routing table and shard caches, driven inline on the caller's goroutine
// with no queues and no wall clock. It implements bench.Cache, so the
// experiment engine can drive a sharded volume exactly as it drives a flat
// one — byte-identical across runs, because nothing here depends on
// scheduling.
//
// Serial and concurrent mode are exclusive: once Start hands shard
// ownership to the workers, serial calls are refused.
type Serial struct {
	e *Engine
}

var _ bench.Cache = (*Serial)(nil)

// Serial returns the deterministic view.
func (e *Engine) Serial() *Serial { return &Serial{e: e} }

// Submit routes the request through the same table/split machinery as the
// concurrent path and executes each fragment inline. Completion is the
// latest fragment completion; each shard's clock stays independently
// monotonic, exactly as in concurrent mode.
func (s *Serial) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	if s.e.started.Load() {
		return at, ErrStarted
	}
	t := s.e.tab.Load()
	r := Request{Op: req.Op, Off: req.Off, Len: req.Len}
	if err := s.e.validate(t, r); err != nil {
		return at, err
	}
	perShard := make([][]op, len(t.shards))
	t.split(r, perShard)
	done := at
	for i, ops := range perShard {
		sh := t.shards[i]
		if sh.now < at {
			sh.now = at
		}
		for j := range ops {
			if err := sh.exec(&ops[j]); err != nil {
				return done, err
			}
		}
		done = vtime.Max(done, sh.now)
	}
	return done, nil
}

// Flush drains and flushes every shard.
func (s *Serial) Flush(at vtime.Time) (vtime.Time, error) {
	if s.e.started.Load() {
		return at, ErrStarted
	}
	t := s.e.tab.Load()
	done := at
	for _, sh := range t.shards {
		if sh.now < at {
			sh.now = at
		}
		o := op{kind: kFlush}
		if err := sh.exec(&o); err != nil {
			return done, err
		}
		done = vtime.Max(done, sh.now)
	}
	return done, nil
}

// Counters sums the shard counters. Like every Serial method it reads
// worker-confined state, so it refuses to run once Start has handed the
// shards to their goroutines; bench.Cache fixes the signature, so the
// refusal is a panic rather than an error. (The unguarded version of this
// method was a latent race the confined analyzer surfaced: a counter read
// concurrent with the workers tears the snapshot.)
func (s *Serial) Counters() bench.Counters {
	if s.e.started.Load() {
		panic("engine: Serial.Counters after Start; use Engine.Counters")
	}
	t := s.e.tab.Load()
	snaps := make([]bench.Counters, len(t.shards))
	for i, sh := range t.shards {
		snaps[i] = sh.cache.Counters()
	}
	return sumCounters(snaps)
}

// CacheDevices concatenates every shard's SSDs, for device-level traffic
// accounting.
func (s *Serial) CacheDevices() []blockdev.Device {
	if s.e.started.Load() {
		panic("engine: Serial.CacheDevices after Start")
	}
	t := s.e.tab.Load()
	var devs []blockdev.Device
	for _, sh := range t.shards {
		devs = append(devs, sh.cache.CacheDevices()...)
	}
	return devs
}

// ShardCounters reports one shard's counters, for per-shard assertions.
func (s *Serial) ShardCounters(i int) bench.Counters {
	if s.e.started.Load() {
		panic("engine: Serial.ShardCounters after Start; use Engine.Counters")
	}
	return s.e.tab.Load().shards[i].cache.Counters()
}
