// Package engine is the sharded, lock-minimal concurrent front-end over
// the SRC cache: it partitions a volume's LBA space across N independent
// src.Cache shards — the share-nothing unit the paper's design already
// provides (independent segments, append-only full-stripe writes, no
// read-modify-write) — and serves requests either deterministically in
// virtual time (Serial, for the experiment engine) or on real goroutines
// with per-shard request queues and batched segment-buffer appends (Start,
// for wall-clock serving and benchmarking).
//
// Concurrency discipline:
//
//   - The routing table is immutable once published and is swapped
//     atomically; the request path loads it with one atomic read and never
//     takes a lock. Any topology change (today: sealing at Close) builds a
//     new table and swaps the pointer.
//   - Each shard's src.Cache, payload store, and virtual clock are owned
//     exclusively by that shard's worker goroutine. All mutation happens on
//     the worker; cross-shard state does not exist. The only
//     synchronization on the hot path is one channel send per shard per
//     batch and one atomic decrement per shard-batch on completion — the
//     dm-writeboost idea of paying for synchronization once per hundreds of
//     appended pages, not once per page.
//   - Counter snapshots and flushes travel through the same per-shard
//     queues as data, so they are ordered with respect to the ops they
//     observe and need no locks either.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/src"
	"srccache/internal/vtime"
)

// Errors reported by the engine.
var (
	// ErrClosed reports a request submitted after Close.
	ErrClosed = errors.New("engine: closed")
	// ErrNotStarted reports a concurrent-mode call before Start.
	ErrNotStarted = errors.New("engine: not started")
	// ErrStarted reports a serial-mode call after Start.
	ErrStarted = errors.New("engine: started; serial mode unavailable")
)

// Options configures an engine.
type Options struct {
	// Shards is the number of independent cache shards (default 1).
	Shards int
	// StripePages is the number of contiguous pages routed to one shard
	// before the mapping moves to the next (default 4096 pages = 16 MiB).
	// Large stripes keep most requests on a single shard; the stripe unit
	// is also the granularity a future rebalancer would migrate.
	StripePages int64
	// QueueDepth is the per-shard batch-queue capacity (default 256
	// batches). A full queue applies back-pressure to submitters.
	QueueDepth int
	// Payload allocates a per-shard byte store so the engine serves real
	// data (the netblockd serving path). Without it the engine tracks
	// cache accounting and timing only (the benchmark path).
	Payload bool
}

func (o Options) withDefaults() Options {
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.StripePages == 0 {
		o.StripePages = 4096
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 256
	}
	return o
}

// Request is one engine-level I/O over the volume's byte address space.
// Data, when non-nil, must be Len bytes: the write source or read
// destination for payload-mode engines.
type Request struct {
	Op   blockdev.Op
	Off  int64
	Len  int64
	Data []byte
}

// opKind is the shard-worker vocabulary: the three data ops plus the
// control ops that ride the same queues.
type opKind uint8

const (
	kRead opKind = iota
	kWrite
	kTrim
	kFlush
	kCounters
)

// op is one shard-local operation: offsets are already remapped into the
// shard's compact address space.
type op struct {
	kind opKind
	off  int64
	n    int64
	data []byte
	// snap receives the shard's counters for kCounters ops.
	snap *bench.Counters
}

// completion fans in the per-shard batches of one submission: the last
// shard to finish closes done. The first error wins; later ones are
// dropped (they are almost always knock-ons of the first).
type completion struct {
	pending atomic.Int32
	err     atomic.Pointer[error]
	done    chan struct{} //srclint:owns finish (closed exactly once, by the last shard)
}

func newCompletion(parts int32) *completion {
	c := &completion{done: make(chan struct{})}
	c.pending.Store(parts)
	return c
}

func (c *completion) fail(err error) {
	if err == nil {
		return
	}
	c.err.CompareAndSwap(nil, &err)
}

func (c *completion) finish() {
	if c.pending.Add(-1) == 0 {
		close(c.done)
	}
}

func (c *completion) wait() error {
	<-c.done
	if p := c.err.Load(); p != nil {
		return *p
	}
	return nil
}

// shardBatch is one channel message: a slice of ops for one shard, plus
// the completion it participates in. stop ends the worker.
type shardBatch struct {
	ops  []op
	done *completion
	stop bool
}

// shard is one share-nothing cache partition. Every field below q is owned
// by the worker goroutine (or by the caller in serial mode — never both:
// Start hands ownership to the worker). The //srclint:confined annotations
// make srclint enforce that ownership statically (DESIGN.md §8 rule 8):
// only shard.run, code it calls, or functions guarded by a started check
// may touch these fields.
type shard struct {
	id int
	q  chan shardBatch

	cache *src.Cache //srclint:confined run
	data  []byte     //srclint:confined run (payload store; nil unless Options.Payload)
	now   vtime.Time //srclint:confined run (shard-local virtual clock)
}

// exec runs one op against the shard, advancing the shard clock.
func (s *shard) exec(o *op) error {
	switch o.kind {
	case kFlush:
		done, err := s.cache.Flush(s.now)
		if err != nil {
			return err
		}
		s.now = vtime.Max(s.now, done)
		return nil
	case kCounters:
		*o.snap = s.cache.Counters()
		return nil
	}
	// Payload copies are byte-granular; the cache models whole pages, so
	// read/write accounting rounds outward to page boundaries and trim
	// rounds inward (a partial page cannot be discarded).
	switch o.kind {
	case kRead, kWrite:
		first := o.off / blockdev.PageSize * blockdev.PageSize
		last := (o.off + o.n + blockdev.PageSize - 1) / blockdev.PageSize * blockdev.PageSize
		opcode := blockdev.OpRead
		if o.kind == kWrite {
			opcode = blockdev.OpWrite
		}
		done, err := s.cache.Submit(s.now, blockdev.Request{Op: opcode, Off: first, Len: last - first})
		if err != nil {
			return err
		}
		s.now = vtime.Max(s.now, done)
		if s.data != nil {
			if o.kind == kRead {
				copy(o.data, s.data[o.off:o.off+o.n])
			} else if o.data != nil {
				copy(s.data[o.off:o.off+o.n], o.data)
			}
		}
	case kTrim:
		first := (o.off + blockdev.PageSize - 1) / blockdev.PageSize * blockdev.PageSize
		last := (o.off + o.n) / blockdev.PageSize * blockdev.PageSize
		if last > first {
			done, err := s.cache.Submit(s.now, blockdev.Request{Op: blockdev.OpTrim, Off: first, Len: last - first})
			if err != nil {
				return err
			}
			s.now = vtime.Max(s.now, done)
		}
		if s.data != nil {
			for i := o.off; i < o.off+o.n; i++ {
				s.data[i] = 0
			}
		}
	}
	return nil
}

// run is the worker loop: execute batches in arrival order until stop.
// It is the per-shard service loop every request crosses, so it anchors
// the allocation-free hot-path contract (DESIGN.md §8 rule 13).
//
//srclint:hotpath
func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for b := range s.q {
		if b.stop {
			return
		}
		var err error
		for i := range b.ops {
			if err = s.exec(&b.ops[i]); err != nil {
				break
			}
		}
		b.done.fail(err)
		b.done.finish()
	}
}

// table is the immutable routing state: a published table is never
// mutated; swaps replace the whole pointer.
type table struct {
	shards      []*shard
	stripeBytes int64
	shardBytes  int64
	sealed      bool
}

// route maps a volume byte offset to (shard index, shard-local offset).
// Stripes rotate round-robin across shards; each shard's stripes pack
// contiguously into its compact local space.
func (t *table) route(off int64) (int, int64) {
	stripe := off / t.stripeBytes
	sh := int(stripe % int64(len(t.shards)))
	local := (stripe/int64(len(t.shards)))*t.stripeBytes + off%t.stripeBytes
	return sh, local
}

// Engine is the sharded front-end. Zero locks guard the request path: the
// routing table is read with one atomic load, queues do the hand-off, and
// shard state is goroutine-confined.
type Engine struct {
	opt Options
	tab atomic.Pointer[table]

	started  atomic.Bool //srclint:handoff (flipped once by Start; guards the Serial view)
	inflight atomic.Int64
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// New builds an engine whose shard caches come from build(i). Every
// shard's primary capacity must be equal and a multiple of the stripe
// size; the engine volume is their concatenation under stripe routing.
func New(opt Options, build func(shard int) (*src.Cache, error)) (*Engine, error) {
	opt = opt.withDefaults()
	if opt.Shards < 1 {
		return nil, fmt.Errorf("engine: shard count %d must be positive", opt.Shards)
	}
	if opt.StripePages < 1 {
		return nil, fmt.Errorf("engine: stripe %d pages must be positive", opt.StripePages)
	}
	stripeBytes := opt.StripePages * blockdev.PageSize
	shards := make([]*shard, opt.Shards)
	var shardBytes int64
	for i := range shards {
		c, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("engine: building shard %d: %w", i, err)
		}
		capBytes := c.Primary().Capacity()
		if i == 0 {
			shardBytes = capBytes
		} else if capBytes != shardBytes {
			return nil, fmt.Errorf("engine: shard %d capacity %d != shard 0 capacity %d", i, capBytes, shardBytes)
		}
		var data []byte
		if opt.Payload {
			data = make([]byte, capBytes)
		}
		shards[i] = &shard{
			id:    i,
			q:     make(chan shardBatch, opt.QueueDepth),
			cache: c,
			data:  data,
		}
	}
	if shardBytes%stripeBytes != 0 {
		return nil, fmt.Errorf("engine: shard capacity %d not a multiple of stripe %d bytes", shardBytes, stripeBytes)
	}
	e := &Engine{opt: opt}
	e.tab.Store(&table{shards: shards, stripeBytes: stripeBytes, shardBytes: shardBytes})
	return e, nil
}

// Shards reports the shard count.
func (e *Engine) Shards() int { return len(e.tab.Load().shards) }

// Size reports the volume size in bytes (the concatenated shard
// primaries).
func (e *Engine) Size() int64 {
	t := e.tab.Load()
	return t.shardBytes * int64(len(t.shards))
}

// Start spawns the shard workers, switching the engine to concurrent mode.
// After Start the Serial view must not be used.
func (e *Engine) Start() error {
	if e.closed.Load() {
		return ErrClosed
	}
	if !e.started.CompareAndSwap(false, true) {
		return errors.New("engine: already started")
	}
	t := e.tab.Load()
	for _, s := range t.shards {
		e.wg.Add(1)
		go s.run(&e.wg)
	}
	return nil
}

// Close seals the routing table, waits for in-flight submissions to drain,
// stops the workers, and waits for them to exit. Safe to call once.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	old := e.tab.Load()
	e.tab.Store(&table{shards: old.shards, stripeBytes: old.stripeBytes, shardBytes: old.shardBytes, sealed: true})
	// New submissions now observe the sealed table and bounce; wait out
	// the ones that raced past it.
	for e.inflight.Load() != 0 {
		runtime.Gosched()
	}
	if e.started.Load() {
		for _, s := range old.shards {
			s.q <- shardBatch{stop: true}
		}
		e.wg.Wait()
	}
	return nil
}

// validate bounds-checks one request against the volume.
func (e *Engine) validate(t *table, req Request) error {
	size := t.shardBytes * int64(len(t.shards))
	switch {
	case req.Op != blockdev.OpRead && req.Op != blockdev.OpWrite && req.Op != blockdev.OpTrim:
		return fmt.Errorf("engine: bad op %v", req.Op)
	case req.Len <= 0:
		return fmt.Errorf("engine: non-positive length %d", req.Len)
	case req.Off < 0 || req.Off > size-req.Len:
		return fmt.Errorf("engine: [%d,%d) outside volume %d", req.Off, req.Off+req.Len, size)
	case req.Data != nil && int64(len(req.Data)) != req.Len:
		return fmt.Errorf("engine: payload %d bytes != length %d", len(req.Data), req.Len)
	}
	return nil
}

// kindOf maps a block op to the worker vocabulary.
func kindOf(o blockdev.Op) opKind {
	switch o {
	case blockdev.OpRead:
		return kRead
	case blockdev.OpWrite:
		return kWrite
	default:
		return kTrim
	}
}

// split appends req's shard-local fragments to the per-shard op lists.
// A request is fragmented only where it crosses a stripe boundary, so with
// the default 16 MiB stripe almost every request is a single fragment.
func (t *table) split(req Request, perShard [][]op) {
	kind := kindOf(req.Op)
	off, n := req.Off, req.Len
	data := req.Data
	for n > 0 {
		sh, local := t.route(off)
		frag := t.stripeBytes - off%t.stripeBytes
		if frag > n {
			frag = n
		}
		o := op{kind: kind, off: local, n: frag}
		if data != nil {
			o.data = data[:frag:frag]
			data = data[frag:]
		}
		perShard[sh] = append(perShard[sh], o)
		off += frag
		n -= frag
	}
}

// submit routes ops to shards and waits for all fragments. Control ops
// (flush, counters) pass preassembled per-shard lists.
func (e *Engine) submit(perShard [][]op) error {
	t := e.tab.Load()
	if t.sealed {
		return ErrClosed
	}
	parts := int32(0)
	for _, ops := range perShard {
		if len(ops) > 0 {
			parts++
		}
	}
	if parts == 0 {
		return nil
	}
	c := newCompletion(parts)
	for i, ops := range perShard {
		if len(ops) > 0 {
			t.shards[i].q <- shardBatch{ops: ops, done: c}
		}
	}
	return c.wait()
}

// SubmitBatch executes a batch of requests concurrently across the shards
// and waits for all of them: one channel send per touched shard, one
// completion for the whole batch — the client-side half of the batched
// append design.
func (e *Engine) SubmitBatch(reqs []Request) error {
	if !e.started.Load() {
		return ErrNotStarted
	}
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	t := e.tab.Load()
	if t.sealed {
		return ErrClosed
	}
	for _, r := range reqs {
		if err := e.validate(t, r); err != nil {
			return err
		}
	}
	perShard := make([][]op, len(t.shards))
	for _, r := range reqs {
		t.split(r, perShard)
	}
	return e.submit(perShard)
}

// Do executes one request.
func (e *Engine) Do(req Request) error {
	return e.SubmitBatch([]Request{req})
}

// Flush drains every shard's dirty buffers and flushes its SSDs, ordered
// after all previously submitted batches on each shard queue.
func (e *Engine) Flush() error {
	if !e.started.Load() {
		return ErrNotStarted
	}
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	t := e.tab.Load()
	if t.sealed {
		return ErrClosed
	}
	perShard := make([][]op, len(t.shards))
	for i := range perShard {
		perShard[i] = []op{{kind: kFlush}}
	}
	return e.submit(perShard)
}

// Counters sums the shard caches' counters. The snapshot op is ordered on
// each shard queue, so every counter reflects a batch boundary; summing
// across shards is safe because shards share nothing.
func (e *Engine) Counters() (bench.Counters, error) {
	if !e.started.Load() {
		return bench.Counters{}, ErrNotStarted
	}
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	t := e.tab.Load()
	if t.sealed {
		return bench.Counters{}, ErrClosed
	}
	snaps := make([]bench.Counters, len(t.shards))
	perShard := make([][]op, len(t.shards))
	for i := range perShard {
		perShard[i] = []op{{kind: kCounters, snap: &snaps[i]}}
	}
	if err := e.submit(perShard); err != nil {
		return bench.Counters{}, err
	}
	return sumCounters(snaps), nil
}

func sumCounters(snaps []bench.Counters) bench.Counters {
	var sum bench.Counters
	for _, c := range snaps {
		sum.Reads += c.Reads
		sum.Writes += c.Writes
		sum.ReadBytes += c.ReadBytes
		sum.WriteBytes += c.WriteBytes
		sum.ReadHits += c.ReadHits
		sum.ReadHitBytes += c.ReadHitBytes
		sum.FillBytes += c.FillBytes
		sum.DestageBytes += c.DestageBytes
		sum.GCCopyBytes += c.GCCopyBytes
		sum.GCSegments += c.GCSegments
		sum.MetadataBytes += c.MetadataBytes
		sum.ParityBytes += c.ParityBytes
		sum.SSDFlushes += c.SSDFlushes
	}
	return sum
}

// ReadAt implements the netblock.Backend read: it blocks until every
// fragment completes. Requires Payload mode.
func (e *Engine) ReadAt(p []byte, off int64) error {
	return e.Do(Request{Op: blockdev.OpRead, Off: off, Len: int64(len(p)), Data: p})
}

// WriteAt implements the netblock.Backend write.
func (e *Engine) WriteAt(p []byte, off int64) error {
	return e.Do(Request{Op: blockdev.OpWrite, Off: off, Len: int64(len(p)), Data: p})
}

// Trim implements the netblock.Backend trim.
func (e *Engine) Trim(off, n int64) error {
	return e.Do(Request{Op: blockdev.OpTrim, Off: off, Len: n})
}
