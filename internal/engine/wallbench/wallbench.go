// Package wallbench is the wall-clock benchmark driver for the concurrent
// engine: the generator of the repository's tracked BENCH_<n>.json
// performance trajectory. Unlike internal/engine itself — which is under
// the determinism contract and never reads the host clock — this package
// deliberately measures real elapsed time: it exists to prove the engine
// moves actual hardware, not virtual clocks. Keeping it out of the engine
// package keeps the wallclock lint contract clean without suppressions.
// Workload streams are pregenerated from seeded generators so both sides
// of every comparison replay identical requests.
package wallbench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"srccache/internal/blockdev"
	"srccache/internal/engine"
	"srccache/internal/stats"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

// BenchConfig parameterizes one suite run.
type BenchConfig struct {
	// Span is the volume size in bytes (default 256 MiB).
	Span int64
	// Requests is the total request count per point (default 400k).
	Requests int
	// Clients is the number of submitting goroutines (default 8).
	Clients int
	// Batch is the closed-loop submission window per client (default 256)
	// — the engine-side analogue of FIO's iodepth.
	Batch int
	// ShardCounts lists the engine points to measure (default 1,2,4,8).
	ShardCounts []int
	// RequestBytes, ReadFraction, Theta, Seed shape the Zipf workload
	// (defaults 4 KiB, 0.7, 0.99, 1).
	RequestBytes int64
	ReadFraction float64
	Theta        float64
	Seed         int64
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.Span == 0 {
		c.Span = 256 << 20
	}
	if c.Requests == 0 {
		c.Requests = 400_000
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Batch == 0 {
		c.Batch = 256
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4, 8}
	}
	if c.RequestBytes == 0 {
		c.RequestBytes = blockdev.PageSize
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.7
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// BenchLatency is the latency digest of one point, in nanoseconds of wall
// time.
type BenchLatency struct {
	MeanNanos int64 `json:"mean_ns"`
	P50Nanos  int64 `json:"p50_ns"`
	P99Nanos  int64 `json:"p99_ns"`
	P999Nanos int64 `json:"p999_ns"`
	MaxNanos  int64 `json:"max_ns"`
}

func digestLatency(h *stats.Histogram) BenchLatency {
	s := h.Summarize()
	return BenchLatency{
		MeanNanos: int64(s.Mean),
		P50Nanos:  int64(s.P50),
		P99Nanos:  int64(s.P99),
		P999Nanos: int64(s.P999),
		MaxNanos:  int64(s.Max),
	}
}

// BenchPoint is one measured configuration.
type BenchPoint struct {
	// Mode is one of:
	//
	//   - "single-shard-dispatch": the pre-engine serving shape — one
	//     shard, every request individually handed off and individually
	//     completed, the per-op dispatch cost netblockd paid on every
	//     frame. This is the baseline the headline speedup divides by.
	//   - "serialized-mutex-reference": an idealized tight loop taking one
	//     uncontended-ish mutex around direct cache calls, with zero
	//     dispatch. No real serving path achieves this (requests arrive
	//     from connections, not an open-coded loop); it is reported so the
	//     trajectory shows how much of the remaining gap is pure cache CPU.
	//   - "engine": sharded queues with batched appends.
	Mode     string       `json:"mode"`
	Shards   int          `json:"shards"`
	Clients  int          `json:"clients"`
	Requests int64        `json:"requests"`
	WallNano int64        `json:"wall_ns"`
	MBps     float64      `json:"mbps"`
	IOPS     float64      `json:"iops"`
	HitRatio float64      `json:"hit_ratio"`
	Latency  BenchLatency `json:"latency"`
}

// BenchResult is the schema of one BENCH_<n>.json trajectory point. Schema
// changes bump the version; CI validates it structurally.
type BenchResult struct {
	Schema     string  `json:"schema"` // "srccache/bench/v1"
	Suite      string  `json:"suite"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Span       int64   `json:"span_bytes"`
	ReqBytes   int64   `json:"request_bytes"`
	ReadFrac   float64 `json:"read_fraction"`
	Theta      float64 `json:"zipf_theta"`
	Seed       int64   `json:"seed"`
	Batch      int     `json:"batch"`
	// Points: the single-shard dispatch baseline, the serialized mutex
	// reference, then the engine at each shard count.
	Points []BenchPoint `json:"points"`
	// Speedup is engine throughput at the largest shard count over the
	// single-shard per-op dispatch baseline — the tracked headline
	// number. On a single-CPU host it isolates the batching win (one
	// queue hand-off per window instead of per request, the
	// dm-writeboost "one write for hundreds" spirit) plus shard-local
	// working-set locality; on multicore it compounds with parallel
	// scaling.
	Speedup float64 `json:"speedup_engine_vs_single_shard_dispatch"`
	// SpeedupVsMutex is the same engine point over the idealized
	// serialized mutex reference, reported for transparency.
	SpeedupVsMutex float64 `json:"speedup_engine_vs_mutex_reference"`
}

// BenchSchema is the current BENCH_<n>.json schema identifier.
const BenchSchema = "srccache/bench/v1"

// benchSpec sizes the shard caches for a point: the per-shard primary is
// the volume slice, the cache region one quarter of it, so Zipf traffic
// misses, fills, destages, and GCs realistically.
func benchSpec(span int64, shards int) engine.ShardSpec {
	return engine.ShardSpec{
		ShardBytes:     span / int64(shards),
		CachePerSSD:    span / int64(shards) / 16,
		EraseGroupSize: 2 << 20,
		SegmentColumn:  64 << 10,
	}
}

// pregenerate builds each client's request stream ahead of the timed
// region, so generation cost (math.Pow in the Zipf sampler) never pollutes
// the measurement and every mode replays identical streams.
func pregenerate(cfg BenchConfig) ([][]blockdev.Request, error) {
	perClient := cfg.Requests / cfg.Clients
	streams := make([][]blockdev.Request, cfg.Clients)
	for c := range streams {
		g, err := workload.NewGenerator(workload.Config{
			Pattern:      workload.Zipf,
			Span:         cfg.Span,
			RequestBytes: cfg.RequestBytes,
			ReadFraction: cfg.ReadFraction,
			Theta:        cfg.Theta,
			Seed:         cfg.Seed + int64(c)*7919,
		})
		if err != nil {
			return nil, err
		}
		streams[c] = make([]blockdev.Request, perClient)
		for i := range streams[c] {
			streams[c][i], _ = g.Next()
		}
	}
	return streams, nil
}

// runDispatchBaseline measures the pre-engine serving shape this engine
// replaces: a single shard with every request individually dispatched and
// individually awaited — the per-op hand-off netblockd paid per frame.
func runDispatchBaseline(cfg BenchConfig, streams [][]blockdev.Request) (BenchPoint, error) {
	build, err := engine.MemShardBuilder(benchSpec(cfg.Span, 1))
	if err != nil {
		return BenchPoint{}, err
	}
	e, err := engine.New(engine.Options{Shards: 1, StripePages: 4096}, build)
	if err != nil {
		return BenchPoint{}, err
	}
	if err := e.Start(); err != nil {
		return BenchPoint{}, err
	}
	defer e.Close()

	hists := make([]stats.Histogram, cfg.Clients)
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := range streams {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := &hists[id]
			for _, r := range streams[id] {
				t0 := time.Now()
				if err := e.Do(engine.Request{Op: r.Op, Off: r.Off, Len: r.Len}); err != nil {
					errs[id] = err
					return
				}
				h.Observe(vtime.Duration(time.Since(t0).Nanoseconds()))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return BenchPoint{}, err
		}
	}
	counters, err := e.Counters()
	if err != nil {
		return BenchPoint{}, err
	}
	var merged stats.Histogram
	for i := range hists {
		merged.Merge(&hists[i])
	}
	return assemblePoint("single-shard-dispatch", 1, cfg, streams, wall, &merged, counters.HitRatio()), nil
}

// runMutexReference measures the idealized serialized path: one src.Cache
// called directly under one mutex from an open-coded loop, with no
// dispatch at all. A lower bound on serialized cost, not a serving path.
func runMutexReference(cfg BenchConfig, streams [][]blockdev.Request) (BenchPoint, error) {
	build, err := engine.MemShardBuilder(benchSpec(cfg.Span, 1))
	if err != nil {
		return BenchPoint{}, err
	}
	cache, err := build(0)
	if err != nil {
		return BenchPoint{}, err
	}
	var (
		mu  sync.Mutex
		now vtime.Time
		wg  sync.WaitGroup
	)
	hists := make([]stats.Histogram, cfg.Clients)
	errs := make([]error, cfg.Clients)
	start := time.Now()
	for c := range streams {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := &hists[id]
			for _, req := range streams[id] {
				t0 := time.Now()
				mu.Lock()
				done, err := cache.Submit(now, req)
				if err == nil && done > now {
					now = done
				}
				mu.Unlock()
				if err != nil {
					errs[id] = err
					return
				}
				h.Observe(vtime.Duration(time.Since(t0).Nanoseconds()))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return BenchPoint{}, err
		}
	}
	var merged stats.Histogram
	for i := range hists {
		merged.Merge(&hists[i])
	}
	return assemblePoint("serialized-mutex-reference", 1, cfg, streams, wall, &merged, cache.Counters().HitRatio()), nil
}

// runEngine measures the concurrent engine at the given shard count.
func runEngine(cfg BenchConfig, shards int, streams [][]blockdev.Request) (BenchPoint, error) {
	build, err := engine.MemShardBuilder(benchSpec(cfg.Span, shards))
	if err != nil {
		return BenchPoint{}, err
	}
	e, err := engine.New(engine.Options{Shards: shards, StripePages: 4096}, build)
	if err != nil {
		return BenchPoint{}, err
	}
	if err := e.Start(); err != nil {
		return BenchPoint{}, err
	}
	defer e.Close()

	hists := make([]stats.Histogram, cfg.Clients)
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := range streams {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := &hists[id]
			stream := streams[id]
			batch := make([]engine.Request, 0, cfg.Batch)
			for i := 0; i < len(stream); i += cfg.Batch {
				end := i + cfg.Batch
				if end > len(stream) {
					end = len(stream)
				}
				batch = batch[:0]
				for _, r := range stream[i:end] {
					batch = append(batch, engine.Request{Op: r.Op, Off: r.Off, Len: r.Len})
				}
				t0 := time.Now()
				if err := e.SubmitBatch(batch); err != nil {
					errs[id] = err
					return
				}
				// Closed-loop window semantics: every request in the
				// window shares its completion latency, like iodepth>1.
				lat := vtime.Duration(time.Since(t0).Nanoseconds())
				for range stream[i:end] {
					h.Observe(lat)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return BenchPoint{}, err
		}
	}
	counters, err := e.Counters()
	if err != nil {
		return BenchPoint{}, err
	}
	var merged stats.Histogram
	for i := range hists {
		merged.Merge(&hists[i])
	}
	return assemblePoint("engine", shards, cfg, streams, wall, &merged, counters.HitRatio()), nil
}

func assemblePoint(mode string, shards int, cfg BenchConfig, streams [][]blockdev.Request, wall time.Duration, h *stats.Histogram, hitRatio float64) BenchPoint {
	var requests, bytes int64
	for _, s := range streams {
		requests += int64(len(s))
		for _, r := range s {
			bytes += r.Len
		}
	}
	secs := wall.Seconds()
	return BenchPoint{
		Mode:     mode,
		Shards:   shards,
		Clients:  cfg.Clients,
		Requests: requests,
		WallNano: wall.Nanoseconds(),
		MBps:     float64(bytes) / 1e6 / secs,
		IOPS:     float64(requests) / secs,
		HitRatio: hitRatio,
		Latency:  digestLatency(h),
	}
}

// RunBenchSuite measures the serialized baseline and the engine at each
// shard count over identical pregenerated Zipf streams, and returns the
// trajectory point. progress, when non-nil, receives one line per
// completed point.
func RunBenchSuite(cfg BenchConfig, progress func(string)) (*BenchResult, error) {
	cfg = cfg.withDefaults()
	streams, err := pregenerate(cfg)
	if err != nil {
		return nil, err
	}
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}

	res := &BenchResult{
		Schema:     BenchSchema,
		Suite:      "engine-zipf",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Span:       cfg.Span,
		ReqBytes:   cfg.RequestBytes,
		ReadFrac:   cfg.ReadFraction,
		Theta:      cfg.Theta,
		Seed:       cfg.Seed,
		Batch:      cfg.Batch,
	}

	base, err := runDispatchBaseline(cfg, streams)
	if err != nil {
		return nil, fmt.Errorf("engine bench: dispatch baseline: %w", err)
	}
	res.Points = append(res.Points, base)
	say("baseline (1 shard, per-op dispatch): %.1f MB/s, p99 %v", base.MBps, time.Duration(base.Latency.P99Nanos))

	ref, err := runMutexReference(cfg, streams)
	if err != nil {
		return nil, fmt.Errorf("engine bench: mutex reference: %w", err)
	}
	res.Points = append(res.Points, ref)
	say("reference (1 shard, mutex tight loop): %.1f MB/s, p99 %v", ref.MBps, time.Duration(ref.Latency.P99Nanos))

	for _, n := range cfg.ShardCounts {
		pt, err := runEngine(cfg, n, streams)
		if err != nil {
			return nil, fmt.Errorf("engine bench: %d shards: %w", n, err)
		}
		res.Points = append(res.Points, pt)
		say("engine %d shards: %.1f MB/s (%.2fx dispatch baseline), p99 %v", n, pt.MBps, pt.MBps/base.MBps, time.Duration(pt.Latency.P99Nanos))
	}

	last := res.Points[len(res.Points)-1]
	res.Speedup = last.MBps / base.MBps
	res.SpeedupVsMutex = last.MBps / ref.MBps
	return res, nil
}
