package wallbench

import "testing"

// TestBenchSuiteSmoke runs a miniature suite end to end: schema stamped,
// one point per mode, throughput and latency digests populated.
func TestBenchSuiteSmoke(t *testing.T) {
	res, err := RunBenchSuite(BenchConfig{
		Span:        32 << 20,
		Requests:    8000,
		Clients:     4,
		Batch:       64,
		ShardCounts: []int{1, 2},
	}, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != BenchSchema {
		t.Fatalf("schema %q", res.Schema)
	}
	if len(res.Points) != 4 { // dispatch baseline, mutex reference, engine×2
		t.Fatalf("got %d points", len(res.Points))
	}
	wantModes := []string{"single-shard-dispatch", "serialized-mutex-reference", "engine", "engine"}
	for i, p := range res.Points {
		if p.Mode != wantModes[i] {
			t.Fatalf("point %d mode %q, want %q", i, p.Mode, wantModes[i])
		}
		if p.Requests != 8000 || p.IOPS <= 0 || p.MBps <= 0 {
			t.Fatalf("point %d implausible: %+v", i, p)
		}
		if p.Latency.P99Nanos < p.Latency.P50Nanos || p.Latency.MaxNanos < p.Latency.P99Nanos {
			t.Fatalf("point %d latency digest out of order: %+v", i, p.Latency)
		}
	}
	if res.Speedup <= 0 || res.SpeedupVsMutex <= 0 {
		t.Fatalf("speedups not computed: %v %v", res.Speedup, res.SpeedupVsMutex)
	}
}
