package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"srccache/internal/blockdev"
)

// TestStressConcurrentIntegrity hammers an 8-shard payload engine from
// many client goroutines mixing reads, writes, trims, flushes, and counter
// snapshots, under -race in the tier-1 run. It asserts:
//
//   - the routing table is never torn: every load observes the identical
//     published pointer until Close seals it;
//   - counters stay coherent: summed shard counters account for exactly
//     the pages the clients submitted (shards share nothing, so nothing
//     can be double-counted or lost);
//   - payload stays correct: each client owns a disjoint region, so its
//     final reads must observe its own last writes despite the shared
//     queues and interleaved flushes.
func TestStressConcurrentIntegrity(t *testing.T) {
	const (
		shards     = 8
		clients    = 8
		opsPerCli  = 1500
		regionSize = int64(1 << 20)
	)
	build, err := MemShardBuilder(ShardSpec{
		ShardBytes:     regionSize, // volume = shards MiB, one region per client
		EraseGroupSize: 256 << 10,
		SegmentColumn:  16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Options{Shards: shards, StripePages: 16, Payload: true}, build)
	if err != nil {
		t.Fatal(err)
	}
	if int64(clients)*regionSize != e.Size() {
		t.Fatalf("volume %d does not split into %d client regions", e.Size(), clients)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	tabBefore := e.tab.Load()

	var (
		wg sync.WaitGroup
		mu sync.Mutex
		// pages written/read/trimmed per client, page-rounded the same way
		// the engine accounts them.
		wantReads, wantWrites int64
		errs                  []error
	)
	refs := make([][]byte, clients)
	for c := 0; c < clients; c++ {
		refs[c] = make([]byte, regionSize)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			base := int64(id) * regionSize
			ref := refs[id]
			var reads, writes int64
			fail := func(err error) {
				mu.Lock()
				errs = append(errs, fmt.Errorf("client %d: %w", id, err))
				mu.Unlock()
			}
			for i := 0; i < opsPerCli; i++ {
				off := rng.Int63n(regionSize - 1)
				n := 1 + rng.Int63n(min64(64<<10, regionSize-off))
				firstPage := (base + off) / blockdev.PageSize
				lastPage := (base + off + n + blockdev.PageSize - 1) / blockdev.PageSize
				switch rng.Intn(10) {
				case 0: // flush rides along with data traffic
					if err := e.Flush(); err != nil {
						fail(err)
						return
					}
				case 1, 2, 3:
					p := make([]byte, n)
					if err := e.ReadAt(p, base+off); err != nil {
						fail(err)
						return
					}
					if !bytes.Equal(p, ref[off:off+n]) {
						fail(fmt.Errorf("read [%d,%d) diverges from this client's writes", off, off+n))
						return
					}
					reads += lastPage - firstPage
				default:
					p := make([]byte, n)
					rng.Read(p)
					if err := e.WriteAt(p, base+off); err != nil {
						fail(err)
						return
					}
					copy(ref[off:off+n], p)
					writes += lastPage - firstPage
				}
				if i%500 == 250 {
					if _, err := e.Counters(); err != nil {
						fail(err)
						return
					}
				}
			}
			mu.Lock()
			wantReads += reads
			wantWrites += writes
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}

	if tabAfter := e.tab.Load(); tabAfter != tabBefore {
		t.Fatal("routing table was swapped during steady-state operation")
	}

	got, err := e.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if got.Reads != wantReads {
		t.Fatalf("summed shard read pages %d, clients submitted %d", got.Reads, wantReads)
	}
	if got.Writes != wantWrites {
		t.Fatalf("summed shard write pages %d, clients submitted %d", got.Writes, wantWrites)
	}
	if got.ReadHits > got.Reads {
		t.Fatalf("hits %d exceed reads %d", got.ReadHits, got.Reads)
	}

	// Final payload check per client region, through the engine.
	for c := 0; c < clients; c++ {
		p := make([]byte, regionSize)
		if err := e.ReadAt(p, int64(c)*regionSize); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, refs[c]) {
			t.Fatalf("client %d region diverges after stress", c)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if !e.tab.Load().sealed {
		t.Fatal("close did not seal the routing table")
	}
}
