package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"srccache/internal/blockdev"
)

func TestCatalogMatchesTable6(t *testing.T) {
	if len(WriteGroup) != 10 || len(MixedGroup) != 7 || len(ReadGroup) != 5 {
		t.Fatalf("group sizes %d/%d/%d, want 10/7/5",
			len(WriteGroup), len(MixedGroup), len(ReadGroup))
	}
	// Spot-check a few transcribed values.
	if WriteGroup[0].Name != "prxy0" || WriteGroup[0].ReadPct != 3 {
		t.Fatalf("prxy0 spec %+v", WriteGroup[0])
	}
	if ReadGroup[3].Name != "src21" || ReadGroup[3].ReadPct != 99 {
		t.Fatalf("src21 spec %+v", ReadGroup[3])
	}
	// Each group's working set is roughly 50 GB per the paper (decimal GB;
	// the Read group is dominated by msn5's 124 GB span but the paper
	// matched *working sets*, so allow a wide band on raw footprints).
	for name, specs := range Groups() {
		gb := float64(GroupFootprint(specs, 1)) / 1e9
		if gb < 30 || gb > 500 {
			t.Fatalf("group %s footprint %.1f GB implausible", name, gb)
		}
	}
}

func TestGroupLookup(t *testing.T) {
	for _, name := range GroupNames() {
		specs, err := Group(name)
		if err != nil || len(specs) == 0 {
			t.Fatalf("Group(%s) = %v, %v", name, specs, err)
		}
	}
	if _, err := Group("nope"); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestSynthValidation(t *testing.T) {
	if _, err := NewSynth(SynthConfig{}); err == nil {
		t.Fatal("accepted missing spec")
	}
	if _, err := NewSynth(SynthConfig{Spec: WriteGroup[0], Scale: -1}); err == nil {
		t.Fatal("accepted negative scale")
	}
	if _, err := NewSynth(SynthConfig{Spec: WriteGroup[0], SeqProb: 1.5}); err == nil {
		t.Fatal("accepted bad seq probability")
	}
	if _, err := NewSynth(SynthConfig{Spec: WriteGroup[0], Offset: 3}); err == nil {
		t.Fatal("accepted unaligned offset")
	}
}

func TestSynthMatchesSpecStatistics(t *testing.T) {
	spec := Spec{Name: "synthcheck", MeanReqKB: 16, FootprintGB: 0.064, ReadPct: 30}
	s, err := NewSynth(SynthConfig{Spec: spec, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var bytesTotal, reads int64
	for i := 0; i < n; i++ {
		r, ok := s.Next()
		if !ok {
			t.Fatal("synth ended")
		}
		if r.Off < 0 || r.Off+r.Len > s.Span() {
			t.Fatalf("request %v outside footprint %d", r, s.Span())
		}
		if r.Off%blockdev.PageSize != 0 || r.Len%blockdev.PageSize != 0 {
			t.Fatalf("unaligned request %v", r)
		}
		bytesTotal += r.Len
		if r.Op == blockdev.OpRead {
			reads++
		}
	}
	meanKB := float64(bytesTotal) / n / 1000
	if math.Abs(meanKB-16)/16 > 0.25 {
		t.Fatalf("mean request %.2f KB, want ~16", meanKB)
	}
	readPct := 100 * float64(reads) / n
	if math.Abs(readPct-30) > 3 {
		t.Fatalf("read pct %.1f, want ~30", readPct)
	}
}

func TestSynthDeterministicPerName(t *testing.T) {
	mk := func(name string) blockdev.Request {
		s, err := NewSynth(SynthConfig{Spec: Spec{Name: name, MeanReqKB: 8, FootprintGB: 0.01, ReadPct: 50}, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		r, _ := s.Next()
		return r
	}
	if mk("a") != mk("a") {
		t.Fatal("same name, same seed diverges")
	}
	if mk("a") == mk("b") {
		t.Fatal("different names produce identical streams")
	}
}

func TestSynthSequentialRuns(t *testing.T) {
	spec := Spec{Name: "seqcheck", MeanReqKB: 4, FootprintGB: 0.016, ReadPct: 0}
	s, err := NewSynth(SynthConfig{Spec: spec, SeqProb: 0.7, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	var last int64 = -1
	const n = 5000
	for i := 0; i < n; i++ {
		r, _ := s.Next()
		if r.Off == last {
			seq++
		}
		last = r.Off + r.Len
	}
	frac := float64(seq) / n
	if frac < 0.5 || frac > 0.9 {
		t.Fatalf("sequential continuation fraction %.2f, want ~0.7", frac)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	spec := Spec{Name: "csvcheck", MeanReqKB: 12, FootprintGB: 0.01, ReadPct: 40}
	s, err := NewSynth(SynthConfig{Spec: spec, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = s.NextRecord()
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Op != recs[i].Op || got[i].Off != recs[i].Off || got[i].Len != recs[i].Len || got[i].Host != recs[i].Host {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVAlignsSectors(t *testing.T) {
	// A sector-aligned MSR record (offset 512, size 1024) must round
	// outward to page alignment.
	in := "128166372003061629,usr,0,Read,512,1024,1331\n"
	recs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Off != 0 || recs[0].Len != blockdev.PageSize {
		t.Fatalf("aligned to %d+%d, want 0+%d", recs[0].Off, recs[0].Len, blockdev.PageSize)
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, in := range []string{
		"1,h,0,Frob,0,4096,0\n", // unknown op
		"x,h,0,Read,0,4096,0\n", // bad timestamp
		"1,h,y,Read,0,4096,0\n", // bad disk
		"1,h,0,Read,z,4096,0\n", // bad offset
		"1,h,0,Read,0,z,0\n",    // bad size
		"1,h,0\n",               // too few fields
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
	// Blank lines and zero-size records are skipped, not errors.
	recs, err := ReadCSV(strings.NewReader("\n1,h,0,Read,0,0,0\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

func TestReplayEnds(t *testing.T) {
	recs := []Record{
		{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize},
		{Op: blockdev.OpRead, Off: blockdev.PageSize, Len: blockdev.PageSize},
	}
	r := NewReplay(recs)
	for i := 0; i < 2; i++ {
		if _, ok := r.Next(); !ok {
			t.Fatalf("ended at %d", i)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("replay did not end")
	}
}
