// Package trace provides the workload-trace substrate for the paper's main
// experiments: the Table 6 catalog of Microsoft Production Server (MPS) and
// Microsoft Cambridge Server (MCS) traces, a synthetic generator that
// reproduces each trace's published first-order statistics (mean request
// size, footprint, read ratio), MSR-format CSV serialization, and a
// replayer usable as a workload source.
//
// The original traces are not redistributable, so experiments synthesize
// statistically matching streams (see DESIGN.md, substitution table); real
// MSR-format CSV files can be replayed instead when available.
package trace

import (
	"fmt"
	"math/rand"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

// Record is one trace event.
type Record struct {
	// Timestamp is the offset from the start of the trace.
	Timestamp vtime.Duration
	// Host names the traced server (e.g. "prxy").
	Host string
	// Disk is the volume number.
	Disk int
	// Op is OpRead or OpWrite.
	Op blockdev.Op
	// Off and Len are byte offset and length, page-aligned.
	Off, Len int64
}

// Spec describes one trace with the statistics the paper reports (Table 6).
type Spec struct {
	// Name is the paper's concatenated server+volume name, e.g. "prxy0".
	Name string
	// MeanReqKB is the mean request size in KB.
	MeanReqKB float64
	// FootprintGB is the touched address-space size in GB.
	FootprintGB float64
	// ReadPct is the percentage of requests that are reads.
	ReadPct float64
}

// The trace catalog, transcribed from Table 6.
var (
	// WriteGroup is the write-dominated trace set.
	WriteGroup = []Spec{
		{"prxy0", 7.07, 84.44, 3},
		{"exch9", 21.06, 110.46, 31},
		{"mds0", 9.59, 11.08, 29},
		{"mds1", 9.59, 11.08, 29},
		{"stg0", 11.95, 23.16, 31},
		{"msn0", 21.73, 31.28, 6},
		{"msn1", 17.84, 37.80, 44},
		{"src12", 29.25, 53.23, 16},
		{"src20", 7.59, 11.28, 12},
		{"src22", 56.31, 62.12, 36},
	}
	// MixedGroup mixes reads and writes.
	MixedGroup = []Spec{
		{"rsrch0", 9.07, 12.41, 11},
		{"exch5", 18.02, 85.628, 31},
		{"hm0", 8.88, 33.84, 32},
		{"fin0", 6.86, 34.91, 19},
		{"web0", 15.29, 29.60, 58},
		{"prn0", 12.53, 66.79, 19},
		{"msn4", 21.73, 31.28, 6},
	}
	// ReadGroup is the read-dominated trace set.
	ReadGroup = []Spec{
		{"ts0", 9.28, 15.95, 26},
		{"usr0", 22.81, 48.694, 72},
		{"proj3", 9.75, 20.87, 87},
		{"src21", 59.31, 37.20, 99},
		{"msn5", 10.01, 124, 75},
	}
)

// Groups maps the paper's group names to their trace sets.
func Groups() map[string][]Spec {
	return map[string][]Spec{
		"Write": WriteGroup,
		"Mixed": MixedGroup,
		"Read":  ReadGroup,
	}
}

// GroupNames returns the group names in the paper's presentation order.
func GroupNames() []string { return []string{"Write", "Mixed", "Read"} }

// Group returns the named trace set.
func Group(name string) ([]Spec, error) {
	specs, ok := Groups()[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown group %q", name)
	}
	return specs, nil
}

// FootprintBytes reports the trace footprint scaled by scale and rounded to
// pages.
func (s Spec) FootprintBytes(scale float64) int64 {
	b := int64(s.FootprintGB * scale * 1e9)
	b -= b % blockdev.PageSize
	if b < blockdev.PageSize {
		b = blockdev.PageSize
	}
	return b
}

// GroupFootprint reports the summed scaled footprint of a trace set — the
// working set the cache is sized against (~50 GB per group unscaled).
func GroupFootprint(specs []Spec, scale float64) int64 {
	var total int64
	for _, s := range specs {
		total += s.FootprintBytes(scale)
	}
	return total
}

// SynthConfig parameterizes synthesis of one trace.
type SynthConfig struct {
	Spec Spec
	// Scale shrinks the footprint (and with it the generated offsets) so
	// laptop-scale experiments preserve the cache:working-set ratio
	// (default 1.0).
	Scale float64
	// Offset places the trace's address range within the shared volume.
	Offset int64
	// Theta is the Zipfian skew of the page popularity (default 0.99).
	Theta float64
	// SeqProb is the probability a request continues the previous one
	// sequentially, modelling the run-length structure of server traces
	// (default 0.3).
	SeqProb float64
	// WriteHotFrac is the probability a write lands in the hot write
	// region (default 0.9); WriteHotSpan is that region's fraction of the
	// footprint (default 0.02). Server write working sets are far smaller
	// and hotter than their read footprints — the property that makes
	// log-cleaning victims largely invalid in the original traces.
	WriteHotFrac float64
	WriteHotSpan float64
	// MaxReqBytes caps a single request (default 1 MiB).
	MaxReqBytes int64
	// Seed drives determinism; the trace name is mixed in.
	Seed int64
}

func (c SynthConfig) validate() (SynthConfig, error) {
	if c.Spec.Name == "" {
		return c, fmt.Errorf("trace: synth spec missing name")
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Scale < 0 {
		return c, fmt.Errorf("trace: negative scale %v", c.Scale)
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.SeqProb == 0 {
		c.SeqProb = 0.3
	}
	if c.SeqProb < 0 || c.SeqProb >= 1 {
		return c, fmt.Errorf("trace: seq probability %v out of [0,1)", c.SeqProb)
	}
	if c.MaxReqBytes == 0 {
		c.MaxReqBytes = 1 << 20
	}
	if c.WriteHotFrac == 0 {
		c.WriteHotFrac = 0.9
	}
	if c.WriteHotFrac < 0 || c.WriteHotFrac > 1 {
		return c, fmt.Errorf("trace: write hot fraction %v out of [0,1]", c.WriteHotFrac)
	}
	if c.WriteHotSpan == 0 {
		c.WriteHotSpan = 0.02
	}
	if c.WriteHotSpan <= 0 || c.WriteHotSpan > 1 {
		return c, fmt.Errorf("trace: write hot span %v out of (0,1]", c.WriteHotSpan)
	}
	if c.Offset%blockdev.PageSize != 0 || c.Offset < 0 {
		return c, fmt.Errorf("trace: offset %d must be page-aligned", c.Offset)
	}
	return c, nil
}

// Synth generates an infinite request stream statistically matching a Spec.
// It implements workload.Source.
type Synth struct {
	cfg       SynthConfig
	rng       *rand.Rand
	zipf      *workload.Zipfian
	pages     int64
	meanPages float64
	lastEnd   int64 // byte offset just past the previous request, -1 if none
	now       vtime.Duration
}

var _ workload.Source = (*Synth)(nil)

// NewSynth builds a generator for cfg.
func NewSynth(cfg SynthConfig) (*Synth, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	for _, r := range cfg.Spec.Name {
		seed = seed*131 + int64(r)
	}
	rng := rand.New(rand.NewSource(seed))
	pages := cfg.Spec.FootprintBytes(cfg.Scale) / blockdev.PageSize
	meanPages := cfg.Spec.MeanReqKB * 1000 / float64(blockdev.PageSize)
	if meanPages < 1 {
		meanPages = 1
	}
	return &Synth{
		cfg:       cfg,
		rng:       rng,
		zipf:      workload.NewZipfian(rng, pages, cfg.Theta),
		pages:     pages,
		meanPages: meanPages,
		lastEnd:   -1,
	}, nil
}

// Span reports the byte range the trace covers, starting at its offset.
func (s *Synth) Span() int64 { return s.pages * blockdev.PageSize }

// Next yields the next request.
func (s *Synth) Next() (blockdev.Request, bool) {
	rec := s.NextRecord()
	return blockdev.Request{Op: rec.Op, Off: rec.Off, Len: rec.Len}, true
}

// NextRecord yields the next request with trace metadata, advancing a
// synthetic clock at an exponential inter-arrival of 100 µs mean.
func (s *Synth) NextRecord() Record {
	// Request size: geometric-like around the published mean, in pages.
	pages := int64(1)
	if s.meanPages > 1 {
		pages = 1 + int64(s.rng.ExpFloat64()*(s.meanPages-1))
	}
	maxPages := s.cfg.MaxReqBytes / blockdev.PageSize
	if pages > maxPages {
		pages = maxPages
	}
	if pages > s.pages {
		pages = s.pages
	}

	op := blockdev.OpWrite
	if s.rng.Float64()*100 < s.cfg.Spec.ReadPct {
		op = blockdev.OpRead
	}

	// Offset: sequential continuation with probability SeqProb; otherwise
	// a Zipfian-popular page, with writes concentrated in the hot write
	// region.
	var page int64
	switch {
	case s.lastEnd >= 0 && s.rng.Float64() < s.cfg.SeqProb:
		page = s.lastEnd
	case op == blockdev.OpWrite && s.rng.Float64() < s.cfg.WriteHotFrac:
		hotPages := int64(float64(s.pages) * s.cfg.WriteHotSpan)
		if hotPages < 1 {
			hotPages = 1
		}
		page = s.zipf.Next() % hotPages
	default:
		page = s.zipf.Next()
	}
	if page+pages > s.pages {
		page = s.pages - pages
	}
	s.lastEnd = (page + pages) % s.pages
	s.now += vtime.Duration(s.rng.ExpFloat64() * float64(100*vtime.Microsecond))
	return Record{
		Timestamp: s.now,
		Host:      s.cfg.Spec.Name,
		Op:        op,
		Off:       s.cfg.Offset + page*blockdev.PageSize,
		Len:       pages * blockdev.PageSize,
	}
}

// Replay is a finite Source over recorded events.
type Replay struct {
	recs []Record
	pos  int
}

var _ workload.Source = (*Replay)(nil)

// NewReplay wraps recs (not copied).
func NewReplay(recs []Record) *Replay { return &Replay{recs: recs} }

// Next yields the next recorded request until the trace ends.
func (r *Replay) Next() (blockdev.Request, bool) {
	if r.pos >= len(r.recs) {
		return blockdev.Request{}, false
	}
	rec := r.recs[r.pos]
	r.pos++
	return blockdev.Request{Op: rec.Op, Off: rec.Off, Len: rec.Len}, true
}
