package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// The CSV layout follows the MSR Cambridge block-trace format:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamps are Windows FILETIME ticks (100 ns units) in the original
// traces; files written by this package use the same unit. ResponseTime is
// preserved on read and written as 0.

// filetimeTick is the FILETIME resolution in virtual-time units.
const filetimeTick = 100 * vtime.Nanosecond

// WriteCSV serializes records in MSR format.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		op := "Write"
		if r.Op == blockdev.OpRead {
			op = "Read"
		}
		_, err := fmt.Fprintf(bw, "%d,%s,%d,%s,%d,%d,0\n",
			int64(r.Timestamp/filetimeTick), r.Host, r.Disk, op, r.Off, r.Len)
		if err != nil {
			return fmt.Errorf("trace: write csv: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCSV parses MSR-format records. Offsets and sizes are rounded outward
// to page alignment (real traces contain sector-aligned values); blank
// lines are skipped.
func ReadCSV(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 6 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want at least 6", line, len(fields))
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d timestamp: %w", line, err)
		}
		disk, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d disk: %w", line, err)
		}
		var op blockdev.Op
		switch strings.ToLower(fields[3]) {
		case "read":
			op = blockdev.OpRead
		case "write":
			op = blockdev.OpWrite
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, fields[3])
		}
		off, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d offset: %w", line, err)
		}
		size, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d size: %w", line, err)
		}
		if size <= 0 {
			continue
		}
		end := off + size
		off -= off % blockdev.PageSize
		if end%blockdev.PageSize != 0 {
			end += blockdev.PageSize - end%blockdev.PageSize
		}
		recs = append(recs, Record{
			Timestamp: vtime.Duration(ts) * filetimeTick,
			Host:      fields[1],
			Disk:      disk,
			Op:        op,
			Off:       off,
			Len:       end - off,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	return recs, nil
}
