package ripqsim

import (
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

const (
	cacheCap   = 16 << 20
	primCap    = 256 << 20
	blockBytes = 1 << 20
)

type env struct {
	cache *Cache
	dev   *blockdev.MemDevice
	prim  *blockdev.MemDevice
	at    vtime.Time
	t     *testing.T
}

func newEnv(t *testing.T, mutate func(*Config)) *env {
	t.Helper()
	dev := blockdev.NewMemDevice(cacheCap, 10*vtime.Microsecond)
	prim := blockdev.NewMemDevice(primCap, vtime.Millisecond)
	cfg := Config{Cache: dev, Primary: prim, BlockBytes: blockBytes}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &env{cache: c, dev: dev, prim: prim, t: t}
}

func (e *env) submit(op blockdev.Op, lba, pages int64) vtime.Duration {
	e.t.Helper()
	done, err := e.cache.Submit(e.at, blockdev.Request{Op: op, Off: lba * blockdev.PageSize, Len: pages * blockdev.PageSize})
	if err != nil {
		e.t.Fatalf("%v lba %d: %v", op, lba, err)
	}
	lat := done.Sub(e.at)
	e.at = vtime.Max(e.at, done)
	return lat
}

func TestValidation(t *testing.T) {
	dev := blockdev.NewMemDevice(cacheCap, 0)
	prim := blockdev.NewMemDevice(primCap, 0)
	if _, err := New(Config{Primary: prim}); err == nil {
		t.Fatal("accepted missing cache")
	}
	if _, err := New(Config{Cache: dev, Primary: prim, BlockBytes: 100}); err == nil {
		t.Fatal("accepted unaligned block")
	}
	if _, err := New(Config{Cache: dev, Primary: prim, BlockBytes: cacheCap, Sections: 8}); err == nil {
		t.Fatal("accepted too few blocks for sections")
	}
	if _, err := New(Config{Cache: dev, Primary: prim, BlockBytes: blockBytes, InsertSection: 99}); err == nil {
		t.Fatal("accepted bad insert section")
	}
	c, err := New(Config{Cache: dev, Primary: prim, BlockBytes: blockBytes})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().Sections != 8 || c.Config().InsertSection != 4 {
		t.Fatalf("defaults %+v", c.Config())
	}
}

func TestMissFillsThenHits(t *testing.T) {
	e := newEnv(t, nil)
	if lat := e.submit(blockdev.OpRead, 7, 1); lat < vtime.Millisecond {
		t.Fatalf("miss latency %v", lat)
	}
	if lat := e.submit(blockdev.OpRead, 7, 1); lat >= vtime.Millisecond {
		t.Fatalf("hit latency %v", lat)
	}
	ctr := e.cache.Counters()
	if ctr.Reads != 2 || ctr.ReadHits != 1 {
		t.Fatalf("counters %+v", ctr)
	}
}

func TestWriteThroughUpdatesPrimary(t *testing.T) {
	e := newEnv(t, nil)
	if lat := e.submit(blockdev.OpWrite, 3, 1); lat < vtime.Millisecond {
		t.Fatalf("write-through latency %v did not include primary", lat)
	}
	if e.prim.Stats().WriteOps != 1 {
		t.Fatal("primary not written")
	}
	// The flush has nothing cache-side to do.
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionsAreSequentialWithinBlock(t *testing.T) {
	e := newEnv(t, nil)
	var offs []int64
	for lba := int64(0); lba < 8; lba++ {
		e.submit(blockdev.OpRead, lba, 1) // misses insert at one section
		it := e.cache.index[lba]
		offs = append(offs, e.cache.blockOff(it.block, it.slot))
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] != offs[i-1]+blockdev.PageSize {
			t.Fatalf("insertions not sequential: %v", offs)
		}
	}
}

func TestEvictionPrefersLowSections(t *testing.T) {
	e := newEnv(t, nil)
	pages := e.cache.numBlocks * e.cache.blockPages
	// Fill the cache well past capacity with misses: evictions must occur
	// and the cache must stay at capacity.
	for lba := int64(0); lba < 2*pages; lba++ {
		e.submit(blockdev.OpRead, lba, 1)
	}
	if int64(e.cache.CachedPages()) > pages {
		t.Fatalf("resident %d pages exceeds capacity %d", e.cache.CachedPages(), pages)
	}
	if len(e.cache.free) != 0 && e.cache.CachedPages() == 0 {
		t.Fatal("nothing cached after fill")
	}
}

func TestPromotionProtectsHotData(t *testing.T) {
	e := newEnv(t, nil)
	pages := e.cache.numBlocks * e.cache.blockPages
	// A small hot set read repeatedly while a cold scan churns the cache.
	hot := int64(64)
	rng := rand.New(rand.NewSource(1))
	for i := int64(0); i < 4*pages; i++ {
		if rng.Float64() < 0.3 {
			e.submit(blockdev.OpRead, rng.Int63n(hot), 1)
		} else {
			e.submit(blockdev.OpRead, hot+i%(3*pages), 1)
		}
	}
	// Most of the hot set must have survived the scan.
	resident := 0
	for lba := int64(0); lba < hot; lba++ {
		if _, ok := e.cache.index[lba]; ok {
			resident++
		}
	}
	if resident < int(hot)/2 {
		t.Fatalf("only %d of %d hot pages survived the scan", resident, hot)
	}
	if e.cache.Counters().GCCopyBytes == 0 {
		t.Fatal("promotions never materialized")
	}
}

func TestOverwriteRefreshesCachedCopy(t *testing.T) {
	e := newEnv(t, nil)
	e.submit(blockdev.OpRead, 5, 1)
	first := e.cache.index[5]
	e.submit(blockdev.OpWrite, 5, 1)
	second, ok := e.cache.index[5]
	if !ok {
		t.Fatal("overwrite dropped the cached copy")
	}
	if first == second {
		t.Fatal("overwrite did not relocate the log-structured copy")
	}
}

func TestEvictionTrimsWholeBlocks(t *testing.T) {
	e := newEnv(t, nil)
	pages := e.cache.numBlocks * e.cache.blockPages
	for lba := int64(0); lba < pages+e.cache.blockPages; lba++ {
		e.submit(blockdev.OpRead, lba, 1)
	}
	if e.dev.Stats().TrimOps == 0 {
		t.Fatal("eviction never trimmed")
	}
	if e.dev.Stats().TrimBytes%blockBytes != 0 {
		t.Fatalf("trim bytes %d not block-aligned", e.dev.Stats().TrimBytes)
	}
}

func TestInsertSectionBounds(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.InsertSection = 7 }) // top section
	e.submit(blockdev.OpRead, 1, 1)
	it := e.cache.index[1]
	if it.vsec != 7 {
		t.Fatalf("inserted at section %d", it.vsec)
	}
	// Promotion at the top section saturates.
	e.submit(blockdev.OpRead, 1, 1)
	if e.cache.index[1].vsec != 7 {
		t.Fatal("promotion overflowed the top section")
	}
}

func TestTrimPassesThrough(t *testing.T) {
	e := newEnv(t, nil)
	e.submit(blockdev.OpTrim, 0, 4)
	if e.prim.Stats().TrimOps != 1 {
		t.Fatal("trim not forwarded to primary")
	}
}
