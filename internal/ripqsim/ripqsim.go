// Package ripqsim implements a RIPQ-like flash cache (Tang et al., FAST'15
// — reference [50] of the paper), one of the "advanced flash-based caching
// schemes" the paper plans to compare against SRC (§6).
//
// RIPQ approximates a priority queue on flash while writing only in large,
// erase-group-aligned blocks: the queue is split into K sections, each with
// an active block absorbing insertions at that priority; a read hit
// *virtually* promotes an item (bookkeeping only), and the promotion is
// materialized — the item physically copied to its new section — only when
// the block holding it is evicted from the queue tail. Writes are
// write-through: RIPQ targets read-dominated photo serving and does not
// support write-back (paper Table 5), which is exactly the trade the
// comparison with SRC probes.
package ripqsim

import (
	"fmt"

	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Config assembles a cache.
type Config struct {
	// Cache is the caching volume (one SSD or a RAID array).
	Cache blockdev.Device
	// SSDs lists the physical devices behind Cache for traffic accounting
	// (defaults to [Cache]).
	SSDs []blockdev.Device
	// Primary is the backing store.
	Primary blockdev.Device
	// BlockBytes is the flash block size — erase-group aligned (default
	// 16 MiB, matching the simulated SSDs' erase group at experiment
	// scale; RIPQ used 256 MB on real drives).
	BlockBytes int64
	// Sections is K, the number of insertion points (default 8).
	Sections int
	// InsertSection is where misses enter the queue, counted from the
	// tail (default K/2, RIPQ's balanced setting).
	InsertSection int
}

// Validate fills defaults.
func (c Config) Validate() (Config, error) {
	if c.Cache == nil || c.Primary == nil {
		return c, fmt.Errorf("ripqsim: cache and primary devices required")
	}
	if len(c.SSDs) == 0 {
		c.SSDs = []blockdev.Device{c.Cache}
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 16 << 20
	}
	if c.BlockBytes%blockdev.PageSize != 0 || c.BlockBytes <= 0 {
		return c, fmt.Errorf("ripqsim: block size %d must be a positive page multiple", c.BlockBytes)
	}
	if c.Cache.Capacity()%c.BlockBytes != 0 {
		return c, fmt.Errorf("ripqsim: cache capacity %d not a multiple of block size %d", c.Cache.Capacity(), c.BlockBytes)
	}
	if c.Sections == 0 {
		c.Sections = 8
	}
	if c.Sections < 1 {
		return c, fmt.Errorf("ripqsim: need at least one section")
	}
	if blocks := c.Cache.Capacity() / c.BlockBytes; blocks < int64(2*c.Sections) {
		return c, fmt.Errorf("ripqsim: %d blocks too few for %d sections", blocks, c.Sections)
	}
	if c.InsertSection == 0 {
		c.InsertSection = c.Sections / 2
	}
	if c.InsertSection < 0 || c.InsertSection >= c.Sections {
		return c, fmt.Errorf("ripqsim: insert section %d out of [0,%d)", c.InsertSection, c.Sections)
	}
	return c, nil
}

// item is one cached page.
type item struct {
	block int64 // physical block
	slot  int64 // page slot within the block
	vsec  int   // virtual section (promotion target)
}

// block is one flash block's state.
type block struct {
	section int   // physical section, -1 when free
	used    int64 // pages appended
	valid   int64 // pages still referenced
	lbas    []int64
}

// Cache is a RIPQ-like flash cache implementing bench.Cache.
type Cache struct {
	cfg        Config
	blockPages int64
	numBlocks  int64

	blocks []block
	free   []int64
	// queues[s] is the FIFO of full blocks in section s (index 0 =
	// oldest); actives[s] is the block absorbing section-s insertions.
	queues  [][]int64
	actives []int64

	index    map[int64]item
	counters bench.Counters
}

var _ bench.Cache = (*Cache)(nil)

// New builds the cache.
func New(cfg Config) (*Cache, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	numBlocks := cfg.Cache.Capacity() / cfg.BlockBytes
	c := &Cache{
		cfg:        cfg,
		blockPages: cfg.BlockBytes / blockdev.PageSize,
		numBlocks:  numBlocks,
		blocks:     make([]block, numBlocks),
		queues:     make([][]int64, cfg.Sections),
		actives:    make([]int64, cfg.Sections),
		index:      make(map[int64]item),
	}
	for b := numBlocks - 1; b >= 0; b-- {
		c.blocks[b].section = -1
		c.free = append(c.free, b)
	}
	for s := range c.actives {
		c.actives[s] = -1
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Cache) Config() Config { return c.cfg }

// Counters implements bench.Cache.
func (c *Cache) Counters() bench.Counters { return c.counters }

// CacheDevices implements bench.Cache.
func (c *Cache) CacheDevices() []blockdev.Device { return c.cfg.SSDs }

// CachedPages reports the resident page count.
func (c *Cache) CachedPages() int { return len(c.index) }

// blockOff is the device offset of slot p in block b.
func (c *Cache) blockOff(b, p int64) int64 {
	return b*c.cfg.BlockBytes + p*blockdev.PageSize
}

// insert appends one page into section s's active block, evicting from the
// queue tail when no block is free.
func (c *Cache) insert(at vtime.Time, lba int64, s int) (vtime.Time, error) {
	ready := at
	if c.actives[s] < 0 || c.blocks[c.actives[s]].used == c.blockPages {
		if c.actives[s] >= 0 {
			c.queues[s] = append(c.queues[s], c.actives[s])
			c.actives[s] = -1
		}
		for len(c.free) == 0 {
			t, err := c.evictTail(at)
			if err != nil {
				return at, err
			}
			ready = vtime.Max(ready, t)
		}
		b := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.blocks[b] = block{section: s, lbas: c.blocks[b].lbas[:0]}
		c.actives[s] = b
	}
	b := c.actives[s]
	blk := &c.blocks[b]
	slot := blk.used
	blk.used++
	blk.valid++
	blk.lbas = append(blk.lbas, lba)
	if old, ok := c.index[lba]; ok {
		c.invalidate(lba, old)
	}
	c.index[lba] = item{block: b, slot: slot, vsec: s}
	done, err := c.cfg.Cache.Submit(ready, blockdev.Request{
		Op: blockdev.OpWrite, Off: c.blockOff(b, slot), Len: blockdev.PageSize,
	})
	if err != nil {
		return at, err
	}
	return done, nil
}

// invalidate drops a cache copy's accounting.
func (c *Cache) invalidate(lba int64, it item) {
	c.blocks[it.block].valid--
	delete(c.index, lba)
}

// evictTail reclaims the oldest block of the lowest non-empty section,
// materializing virtual promotions: items whose virtual section rose above
// the block's physical section are copied to their target section; the
// rest are evicted.
func (c *Cache) evictTail(at vtime.Time) (vtime.Time, error) {
	victim := int64(-1)
	section := -1
	for s := 0; s < c.cfg.Sections; s++ {
		if len(c.queues[s]) > 0 {
			victim = c.queues[s][0]
			c.queues[s] = c.queues[s][1:]
			section = s
			break
		}
	}
	if victim < 0 {
		// Only active blocks remain: seal the lowest one and retry once.
		for s := 0; s < c.cfg.Sections; s++ {
			if c.actives[s] >= 0 {
				c.queues[s] = append(c.queues[s], c.actives[s])
				c.actives[s] = -1
				return c.evictTail(at)
			}
		}
		return at, fmt.Errorf("ripqsim: no evictable block")
	}

	blk := &c.blocks[victim]
	done := at
	for slot, lba := range blk.lbas {
		it, ok := c.index[lba]
		if !ok || it.block != victim || it.slot != int64(slot) {
			continue // stale: a newer copy exists elsewhere
		}
		if it.vsec > section {
			// Materialize the promotion: read here, reinsert there.
			t, err := c.cfg.Cache.Submit(at, blockdev.Request{
				Op: blockdev.OpRead, Off: c.blockOff(victim, int64(slot)), Len: blockdev.PageSize,
			})
			if err != nil {
				return at, err
			}
			c.invalidate(lba, it)
			t, err = c.insert(t, lba, it.vsec)
			if err != nil {
				return at, err
			}
			c.counters.GCCopyBytes += blockdev.PageSize
			done = vtime.Max(done, t)
			continue
		}
		c.invalidate(lba, it)
	}
	blk.section = -1
	blk.used = 0
	blk.valid = 0
	blk.lbas = blk.lbas[:0]
	// Large-block trim keeps the SSD's erase-group accounting aligned —
	// the property RIPQ is built around.
	t, err := c.cfg.Cache.Submit(at, blockdev.Request{
		Op: blockdev.OpTrim, Off: victim * c.cfg.BlockBytes, Len: c.cfg.BlockBytes,
	})
	if err != nil {
		return at, err
	}
	c.free = append(c.free, victim)
	return vtime.Max(done, t), nil
}

// promote raises an item's virtual section by one — RIPQ's restricted
// (lazy) promotion on hit.
func (c *Cache) promote(lba int64) {
	it, ok := c.index[lba]
	if !ok {
		return
	}
	if it.vsec < c.cfg.Sections-1 {
		it.vsec++
		c.index[lba] = it
	}
}

// Submit serves one host request.
func (c *Cache) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	if err := req.Validate(c.cfg.Primary.Capacity()); err != nil {
		return at, err
	}
	first := req.Off / blockdev.PageSize
	pages := req.Pages()
	done := at
	switch req.Op {
	case blockdev.OpWrite:
		c.counters.Writes += pages
		c.counters.WriteBytes += req.Len
		// Write-through: primary is updated synchronously; the cached
		// copy (if any) is refreshed in place in the queue.
		t, err := c.cfg.Primary.Submit(at, req)
		if err != nil {
			return at, err
		}
		done = t
		for p := first; p < first+pages; p++ {
			if it, ok := c.index[p]; ok {
				t, err := c.reinsertAt(at, p, it)
				if err != nil {
					return done, err
				}
				done = vtime.Max(done, t)
			}
		}
	case blockdev.OpRead:
		c.counters.Reads += pages
		c.counters.ReadBytes += req.Len
		for p := first; p < first+pages; p++ {
			t, err := c.readPage(at, p)
			if err != nil {
				return done, err
			}
			done = vtime.Max(done, t)
		}
	default:
		return c.cfg.Primary.Submit(at, req)
	}
	return done, nil
}

// reinsertAt refreshes an overwritten cached page at its current virtual
// section.
func (c *Cache) reinsertAt(at vtime.Time, lba int64, it item) (vtime.Time, error) {
	vsec := it.vsec
	c.invalidate(lba, it)
	return c.insert(at, lba, vsec)
}

// readPage serves one page: hit from flash with a virtual promotion, miss
// from primary with an insertion at the configured point.
func (c *Cache) readPage(at vtime.Time, lba int64) (vtime.Time, error) {
	if it, ok := c.index[lba]; ok {
		c.counters.ReadHits++
		c.counters.ReadHitBytes += blockdev.PageSize
		c.promote(lba)
		return c.cfg.Cache.Submit(at, blockdev.Request{
			Op: blockdev.OpRead, Off: c.blockOff(it.block, it.slot), Len: blockdev.PageSize,
		})
	}
	done, err := c.cfg.Primary.Submit(at, blockdev.Request{
		Op: blockdev.OpRead, Off: lba * blockdev.PageSize, Len: blockdev.PageSize,
	})
	if err != nil {
		return at, err
	}
	c.counters.FillBytes += blockdev.PageSize
	if _, err := c.insert(done, lba, c.cfg.InsertSection); err != nil {
		return done, err
	}
	return done, nil
}

// Flush passes through to primary: all dirty data already lives there
// (write-through), so only the backing store's ordering matters.
func (c *Cache) Flush(at vtime.Time) (vtime.Time, error) {
	return c.cfg.Primary.Flush(at)
}
