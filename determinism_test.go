package srccache_test

import (
	"testing"

	"srccache"
	"srccache/internal/experiments"
)

// The simulation's core guarantee: identical configuration and seed produce
// bit-identical results — every number in EXPERIMENTS.md is exactly
// reproducible.

func TestExperimentDeterminism(t *testing.T) {
	opts := experiments.Options{Scale: 16, Requests: 30_000, Seed: 5}
	run := func() [][]string {
		tables, err := experiments.Figure7(opts)
		if err != nil {
			t.Fatal(err)
		}
		var rows [][]string
		for _, tbl := range tables {
			rows = append(rows, tbl.Rows...)
		}
		return rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("row %d col %d: %q != %q", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() (float64, srccache.CacheCounters) {
		sys, err := srccache.NewSystem(srccache.SystemConfig{})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := srccache.NewWorkload(srccache.WorkloadConfig{
			Span: 256 << 20, ReadFraction: 0.4, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := srccache.RunBench(sys.Cache, []srccache.WorkloadSource{gen},
			srccache.BenchOptions{Slots: 32, MaxRequests: 20_000})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps(), sys.Cache.Counters()
	}
	mbps1, ctr1 := run()
	mbps2, ctr2 := run()
	if mbps1 != mbps2 {
		t.Fatalf("throughput differs across identical runs: %v vs %v", mbps1, mbps2)
	}
	if ctr1 != ctr2 {
		t.Fatalf("counters differ: %+v vs %+v", ctr1, ctr2)
	}
}

func TestSeedChangesResults(t *testing.T) {
	run := func(seed int64) int64 {
		sys, err := srccache.NewSystem(srccache.SystemConfig{})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := srccache.NewWorkload(srccache.WorkloadConfig{
			Span: 256 << 20, ReadFraction: 0.4, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := srccache.RunBench(sys.Cache, []srccache.WorkloadSource{gen},
			srccache.BenchOptions{Slots: 32, MaxRequests: 5_000})
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Makespan())
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical makespans")
	}
}
