package srccache_test

import (
	"fmt"

	"srccache"
)

// ExampleNewSystem shows the smallest end-to-end use: assemble the default
// deployment (4 SATA-MLC SSDs in RAID-5 over an HDD RAID-10 backend), push
// a write and a read through the cache, and observe the hit.
func ExampleNewSystem() {
	sys, err := srccache.NewSystem(srccache.SystemConfig{})
	if err != nil {
		panic(err)
	}
	var at srccache.Time
	at, err = sys.Cache.Submit(at, srccache.Request{
		Op: srccache.OpWrite, Off: 0, Len: srccache.PageSize,
	})
	if err != nil {
		panic(err)
	}
	if _, err = sys.Cache.Submit(at, srccache.Request{
		Op: srccache.OpRead, Off: 0, Len: srccache.PageSize,
	}); err != nil {
		panic(err)
	}
	ctr := sys.Cache.Counters()
	fmt.Printf("writes=%d reads=%d hits=%d\n", ctr.Writes, ctr.Reads, ctr.ReadHits)
	// Output: writes=1 reads=1 hits=1
}

// ExampleNewTraceSynth generates requests statistically matching one of the
// paper's Table 6 traces at a reduced footprint.
func ExampleNewTraceSynth() {
	specs, _ := srccache.TraceGroup("Write")
	synth, err := srccache.NewTraceSynth(srccache.TraceSynthConfig{
		Spec:  specs[0], // prxy0: 7.07 KB mean requests, 3% reads
		Scale: 1.0 / 1024,
	})
	if err != nil {
		panic(err)
	}
	writes := 0
	for i := 0; i < 100; i++ {
		req, _ := synth.Next()
		if req.Op == srccache.OpWrite {
			writes++
		}
	}
	fmt.Println(writes > 80) // a write-dominated stream
	// Output: true
}
