package srccache_test

import (
	"testing"

	"srccache"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := srccache.NewSystem(srccache.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.SSDs) != 4 || sys.Cache == nil || sys.Primary == nil {
		t.Fatal("system incomplete")
	}
	cfg := sys.Cache.Config()
	if cfg.GC != srccache.SelGC || cfg.Level != srccache.RAID5 || cfg.Parity != srccache.NPC {
		t.Fatalf("cache defaults %+v", cfg)
	}
}

func TestSystemServesIO(t *testing.T) {
	sys, err := srccache.NewSystem(srccache.SystemConfig{TrackContent: true})
	if err != nil {
		t.Fatal(err)
	}
	var at srccache.Time
	for lba := int64(0); lba < 100; lba++ {
		done, err := sys.Cache.Submit(at, srccache.Request{
			Op: srccache.OpWrite, Off: lba * srccache.PageSize, Len: srccache.PageSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		if done > at {
			at = done
		}
	}
	done, err := sys.Cache.Submit(at, srccache.Request{Op: srccache.OpRead, Off: 0, Len: srccache.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if done < at {
		t.Fatal("read completed before submission")
	}
	ctr := sys.Cache.Counters()
	if ctr.Writes != 100 || ctr.Reads != 1 || ctr.ReadHits != 1 {
		t.Fatalf("counters %+v", ctr)
	}
}

func TestWorkloadThroughBench(t *testing.T) {
	sys, err := srccache.NewSystem(srccache.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := srccache.NewWorkload(srccache.WorkloadConfig{
		Span:         64 << 20,
		ReadFraction: 0.3,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := srccache.RunBench(sys.Cache, []srccache.WorkloadSource{gen}, srccache.BenchOptions{
		Slots:       8,
		MaxRequests: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2000 || res.MBps() <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestTraceGroupAndSynth(t *testing.T) {
	specs, err := srccache.TraceGroup("Write")
	if err != nil || len(specs) != 10 {
		t.Fatalf("TraceGroup: %v, %d specs", err, len(specs))
	}
	synth, err := srccache.NewTraceSynth(srccache.TraceSynthConfig{
		Spec:  specs[0],
		Scale: 1.0 / 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, ok := synth.Next()
	if !ok || req.Len <= 0 {
		t.Fatalf("synth request %+v", req)
	}
	if _, err := srccache.TraceGroup("bogus"); err == nil {
		t.Fatal("unknown group accepted")
	}
}
