// Package srccache is a full reproduction of "Enabling Cost-Effective
// Flash based Caching with an Array of Commodity SSDs" (Oh et al., ACM
// Middleware 2015): SRC — SSD RAID as a Cache — a write-back,
// log-structured, RAID-protected block cache over an array of commodity
// SSDs, together with every substrate the paper's evaluation needs, built
// in pure Go on a deterministic virtual-time storage simulation.
//
// The package re-exports the user-facing surface of the internal
// implementation:
//
//   - the SRC cache itself (Cache, CacheConfig) with the paper's full
//     design space: Sel-GC vs S2D reclamation, FIFO/Greedy victims, PC/NPC
//     clean-data parity, RAID-0/4/5 striping, per-segment or
//     per-segment-group flushing, crash recovery, degraded reads and
//     drive rebuild;
//   - simulated devices: flash-based SSDs with a hybrid FTL (NewSSD),
//     rotating disks, and an HDD-RAID-10-over-network primary store
//     (NewPrimary);
//   - workload machinery: FIO-like generators, MSR-style trace synthesis
//     and replay, and a closed-loop virtual-time benchmark runner;
//   - the paper's experiment suite (internal/experiments, driven by
//     cmd/srcbench) regenerating every table and figure.
//
// # Quickstart
//
// Build a 4-drive array backed by networked primary storage and push I/O
// through the cache:
//
//	sys, err := srccache.NewSystem(srccache.SystemConfig{})
//	if err != nil { ... }
//	done, err := sys.Cache.Submit(0, srccache.Request{
//		Op: srccache.OpWrite, Off: 0, Len: 4096,
//	})
//
// See examples/ for runnable scenarios, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the paper-versus-measured record.
package srccache
