// Netstore: the network-attached-storage side of the paper's setting. The
// simulation models the iSCSI path analytically; this example runs the
// repository's real TCP block-device protocol (internal/netblock, served
// by cmd/netblockd) — an in-process server, several concurrent clients,
// and a consistency check of real bytes over real sockets.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"srccache/internal/netblock"
)

const (
	volumeSize = 64 << 20
	clients    = 4
	blockSize  = 64 << 10
	blocksEach = 64
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv, err := netblock.NewServer(volumeSize)
	if err != nil {
		return err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("netblock server exporting %d MiB on %s\n", int64(volumeSize)>>20, addr)

	// Concurrent writers, each owning a disjoint region. Each writes its
	// error to its own slot — no shared channel to close and drain.
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := writerClient(addr.String(), id); err != nil {
				errs[id] = fmt.Errorf("client %d: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Printf("%d clients wrote %d MiB total\n", clients,
		int64(clients*blocksEach*blockSize)>>20)

	// A fresh reader verifies every byte.
	cli, err := netblock.Dial(addr.String())
	if err != nil {
		return err
	}
	defer cli.Close()
	buf := make([]byte, blockSize)
	for id := 0; id < clients; id++ {
		for b := 0; b < blocksEach; b++ {
			off := regionOffset(id, b)
			if _, err := cli.ReadAt(buf, off); err != nil {
				return err
			}
			if !bytes.Equal(buf, pattern(id, b)) {
				return fmt.Errorf("corruption at offset %d", off)
			}
		}
	}
	fmt.Println("verification passed: every block read back intact")
	return nil
}

func regionOffset(id, block int) int64 {
	return int64(id)*int64(blocksEach*blockSize) + int64(block)*blockSize
}

func pattern(id, block int) []byte {
	p := make([]byte, blockSize)
	for i := range p {
		p[i] = byte(id*31 + block*7 + i)
	}
	return p
}

func writerClient(addr string, id int) error {
	cli, err := netblock.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	for b := 0; b < blocksEach; b++ {
		if _, err := cli.WriteAt(pattern(id, b), regionOffset(id, b)); err != nil {
			return err
		}
	}
	return cli.Flush()
}
