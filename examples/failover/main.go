// Failover: exercise SRC's reliability story end to end — the reason the
// paper puts RAID under the cache at all. Dirty data is written and made
// durable, one SSD then fails: reads keep working through on-the-fly parity
// reconstruction, a hot spare is rebuilt online while reads continue, and
// finally a host crash is recovered from the on-SSD segment metadata
// (MS/ME scan).
package main

import (
	"fmt"
	"log"

	"srccache"
)

const (
	ssdCap    = 64 << 20
	egs       = 4 << 20
	primCap   = 512 << 20
	pages     = 2000 // dirty working set
	failDrive = 1
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Assemble the array by hand so each drive sits behind a fault
	// injector.
	faults := make([]*srccache.Faulty, 4)
	devs := make([]srccache.Device, 4)
	for i := range devs {
		cfg := srccache.SATAMLCConfig(fmt.Sprintf("ssd%d", i), ssdCap)
		cfg.EraseGroupSize = egs
		cfg.WriteCacheBytes = 4 << 20
		drive, err := srccache.NewSSD(cfg)
		if err != nil {
			return err
		}
		faults[i] = srccache.NewFaulty(drive)
		devs[i] = faults[i]
	}
	prim, err := srccache.NewPrimary(srccache.PrimaryConfig{DiskCapacity: primCap / 4})
	if err != nil {
		return err
	}
	cache, err := srccache.NewCache(srccache.CacheConfig{
		SSDs:           devs,
		Primary:        prim,
		EraseGroupSize: egs,
		SegmentColumn:  64 << 10,
		TrackContent:   true, // enables integrity verification and recovery
	})
	if err != nil {
		return err
	}

	// 1. Write a dirty working set and make it durable on the array.
	var at srccache.Time
	for lba := int64(0); lba < pages; lba++ {
		done, err := cache.Submit(at, srccache.Request{
			Op: srccache.OpWrite, Off: lba * srccache.PageSize, Len: srccache.PageSize,
		})
		if err != nil {
			return err
		}
		if done > at {
			at = done
		}
	}
	at, err = cache.Flush(at)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d dirty pages, flushed at %v\n", pages, at)

	// 2. Fail a drive. Reads are served by reconstructing from the
	// surviving columns and parity.
	faults[failDrive].Fail()
	fmt.Printf("ssd%d failed; reading the whole working set degraded...\n", failDrive)
	for lba := int64(0); lba < pages; lba++ {
		done, err := cache.Submit(at, srccache.Request{
			Op: srccache.OpRead, Off: lba * srccache.PageSize, Len: srccache.PageSize,
		})
		if err != nil {
			return fmt.Errorf("degraded read of page %d: %w", lba, err)
		}
		if done > at {
			at = done
		}
	}
	fmt.Println("all pages readable in degraded mode (parity reconstruction)")

	// 3. Hot-swap in a fresh drive and rebuild online: ReplaceSSD arms a
	// background walker, RebuildStep reconstructs one segment column per
	// call, and foreground reads keep being served throughout — degraded
	// for ranges the walker has not reached yet.
	freshCfg := srccache.SATAMLCConfig(fmt.Sprintf("ssd%d-spare", failDrive), ssdCap)
	freshCfg.EraseGroupSize = egs
	freshCfg.WriteCacheBytes = 4 << 20
	freshDrive, err := srccache.NewSSD(freshCfg)
	if err != nil {
		return err
	}
	faults[failDrive] = srccache.NewFaulty(freshDrive)
	replacedAt := at
	at, err = cache.ReplaceSSD(at, failDrive, faults[failDrive])
	if err != nil {
		return err
	}
	_, total := cache.RebuildProgress()
	var steps, reads int
	for lba := int64(0); ; lba = (lba + 1) % pages {
		done, pending, err := cache.RebuildStep(at)
		if err != nil {
			return err
		}
		steps++
		if done > at {
			at = done
		}
		if !pending {
			break
		}
		// A foreground read rides along between rebuild steps.
		done, err = cache.Submit(at, srccache.Request{
			Op: srccache.OpRead, Off: lba * srccache.PageSize, Len: srccache.PageSize,
		})
		if err != nil {
			return fmt.Errorf("read of page %d during rebuild: %w", lba, err)
		}
		reads++
		if done > at {
			at = done
		}
	}
	fmt.Printf("ssd%d rebuilt online: %d/%d segment columns in %v, %d reads served meanwhile\n",
		failDrive, steps, total, at.Sub(replacedAt), reads)

	// Verify every page's checksum post-rebuild (paper §4.1: checksums
	// catch silent corruption; parity repairs it).
	for lba := int64(0); lba < pages; lba++ {
		tag, done, err := cache.ReadCheck(at, lba)
		if err != nil {
			return fmt.Errorf("verify page %d: %w", lba, err)
		}
		if tag != srccache.DataTag(lba, 1) {
			return fmt.Errorf("page %d holds wrong content after rebuild", lba)
		}
		at = done
	}
	fmt.Println("post-rebuild verification passed for every page")

	// Make the rebuilt drive's contents durable before simulating the
	// crash — without this flush, the rebuild itself would be lost.
	at, err = cache.Flush(at)
	if err != nil {
		return err
	}

	// 4. Crash the host (volatile device caches lost) and recover from
	// the on-SSD MS/ME metadata.
	for _, f := range faults {
		f.Content().Crash()
	}
	segments, err := cache.Recover()
	if err != nil {
		return err
	}
	fmt.Printf("recovered %d segments after crash; %d pages cached\n", segments, cache.CachedPages())
	if cache.CachedPages() < pages {
		return fmt.Errorf("flushed data lost in recovery: %d < %d", cache.CachedPages(), pages)
	}
	fmt.Println("no durable data lost")
	return nil
}
