// Quickstart: assemble an SRC cache over a simulated 4-SSD array fronting
// networked HDD primary storage, push I/O through it, and read the
// evaluation metrics — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"srccache"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A complete deployment with the paper's defaults: RAID-5 striping,
	// Sel-GC with U_MAX 90%, FIFO victims, no parity for clean data,
	// flush per segment group.
	sys, err := srccache.NewSystem(srccache.SystemConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("assembled SRC over %d SSDs, cache groups=%d, primary=%d MiB\n",
		len(sys.SSDs), sys.Cache.Groups(), sys.Primary.Capacity()>>20)

	// Drive it with an FIO-like mixed workload: 70% writes, uniform
	// random 4 KiB requests over 512 MiB.
	gen, err := srccache.NewWorkload(srccache.WorkloadConfig{
		Pattern:      srccache.UniformRandom,
		Span:         512 << 20,
		ReadFraction: 0.3,
		Seed:         1,
	})
	if err != nil {
		return err
	}
	res, err := srccache.RunBench(sys.Cache, []srccache.WorkloadSource{gen}, srccache.BenchOptions{
		Slots:       128, // iodepth 32 x 4 threads
		MaxRequests: 50_000,
	})
	if err != nil {
		return err
	}

	fmt.Printf("throughput  %.1f MB/s (%d requests in %v of virtual time)\n",
		res.MBps(), res.Requests, res.Makespan())
	fmt.Printf("latency     mean=%v p99=%v\n", res.Latency.Mean(), res.Latency.Percentile(99))

	ctr := sys.Cache.Counters()
	fmt.Printf("hit ratio   %.2f\n", ctr.HitRatio())
	fmt.Printf("destaged    %d MiB to primary, %d MiB copied SSD-to-SSD by Sel-GC\n",
		ctr.DestageBytes>>20, ctr.GCCopyBytes>>20)
	fmt.Printf("overheads   metadata %d MiB, parity %d MiB, %d flush commands\n",
		ctr.MetadataBytes>>20, ctr.ParityBytes>>20, ctr.SSDFlushes)

	// Per-drive wear, the input to the paper's lifetime model.
	for i, drive := range sys.SSDs {
		fmt.Printf("ssd%d        WAF=%.2f mean erase count=%.1f\n", i, drive.WAF(), drive.MeanEraseCount())
	}
	return nil
}
