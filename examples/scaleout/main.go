// Scaleout: the paper's §6 roadmap item — "expand or contract the number
// of SSDs in RAID-5 in a smooth and seamless manner" — exercised end to
// end: a 3-drive SRC array runs a skewed workload, is expanded to 5 drives
// under content verification, then contracted back to 3, with no data lost
// at any step.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"srccache"
)

const (
	ssdCap  = 64 << 20
	egs     = 4 << 20
	primCap = 512 << 20
	span    = 24000 // working-set pages, beyond one array's capacity
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mkDrive := func(name string) (srccache.Device, error) {
		cfg := srccache.SATAMLCConfig(name, ssdCap)
		cfg.EraseGroupSize = egs
		cfg.WriteCacheBytes = 4 << 20
		return srccache.NewSSD(cfg)
	}
	drives := make([]srccache.Device, 3)
	for i := range drives {
		d, err := mkDrive(fmt.Sprintf("ssd%d", i))
		if err != nil {
			return err
		}
		drives[i] = d
	}
	prim, err := srccache.NewPrimary(srccache.PrimaryConfig{DiskCapacity: primCap / 4})
	if err != nil {
		return err
	}
	cache, err := srccache.NewCache(srccache.CacheConfig{
		SSDs:           drives,
		Primary:        prim,
		EraseGroupSize: egs,
		SegmentColumn:  64 << 10,
		TrackContent:   true,
	})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(7))
	versions := make(map[int64]uint64)
	var at srccache.Time
	apply := func(n int, label string) error {
		for i := 0; i < n; i++ {
			lba := rng.Int63n(span)
			done, err := cache.Submit(at, srccache.Request{
				Op: srccache.OpWrite, Off: lba * srccache.PageSize, Len: srccache.PageSize,
			})
			if err != nil {
				return fmt.Errorf("%s write: %w", label, err)
			}
			versions[lba]++
			if done > at {
				at = done
			}
		}
		return nil
	}
	verify := func(label string) error {
		for lba, v := range versions {
			want := srccache.DataTag(lba, v)
			if tag, _, err := cache.ReadCheck(at, lba); err == nil {
				if tag != want {
					return fmt.Errorf("%s: page %d wrong in cache", label, lba)
				}
				continue
			}
			// Not cached: the latest version must be safe on primary.
			got, err := prim.Content().ReadTag(lba)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("%s: page %d neither cached nor destaged", label, lba)
			}
		}
		fmt.Printf("%-22s %6d pages cached, %d groups, all content verified\n",
			label, cache.CachedPages(), cache.Groups())
		return nil
	}

	if err := apply(20000, "warmup"); err != nil {
		return err
	}
	if err := verify("3-drive RAID-5:"); err != nil {
		return err
	}

	// Expand to 5 drives (two new ones join; the existing three stay).
	bigger := append(append([]srccache.Device{}, drives...), nil, nil)
	for i := 3; i < 5; i++ {
		d, err := mkDrive(fmt.Sprintf("ssd%d", i))
		if err != nil {
			return err
		}
		bigger[i] = d
	}
	done, err := cache.Resize(at, bigger)
	if err != nil {
		return err
	}
	fmt.Printf("expanded to 5 drives in %v of virtual time\n", done.Sub(at))
	at = done
	if err := apply(10000, "post-expand"); err != nil {
		return err
	}
	if err := verify("5-drive RAID-5:"); err != nil {
		return err
	}

	// Contract back to 3 drives: overflow destages to primary, nothing is
	// lost.
	done, err = cache.Resize(at, bigger[:3])
	if err != nil {
		return err
	}
	fmt.Printf("contracted to 3 drives in %v of virtual time\n", done.Sub(at))
	at = done
	if err := verify("3-drive again:"); err != nil {
		return err
	}
	fmt.Println("scale-out/scale-in round trip complete — no data lost")
	return nil
}
