// Scaleout: the paper's §6 roadmap item — "expand or contract the number
// of SSDs in RAID-5 in a smooth and seamless manner" — exercised end to
// end, at both tiers where the repository can grow.
//
// Act one scales the array inside one node: a 3-drive SRC array runs a
// skewed workload, is expanded to 5 drives under content verification, then
// contracted back to 3, with no data lost at any step.
//
// Act two scales the fleet across nodes: three live netblock servers on
// loopback form a consistent-hash ring with 2-way chained replication, a
// node is killed (reads and writes fail over), restarted with a wiped disk
// (anti-entropy repair restores byte-identical contents), and a fourth node
// joins with a graceful rebalance streaming its ranges while the old owners
// keep serving — node loss as column loss writ large.
//
// Act three replays act two's faults with nobody at the keyboard: a
// supervisor daemon owns the routing table, detects the kill from its own
// ping latencies, quarantines the stale replica, repairs it hash-verified
// once the node returns, and runs the join rebalance through its
// crash-safe journal — the client only reads and writes.
//
// -small shrinks the acts for CI smoke runs.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"srccache"
	"srccache/internal/cluster"
	"srccache/internal/cluster/fleet"
	"srccache/internal/cluster/supervisor"
	"srccache/internal/netblock"
)

const (
	ssdCap  = 64 << 20
	egs     = 4 << 20
	primCap = 512 << 20
)

func main() {
	small := flag.Bool("small", false, "shrink the workload for CI smoke runs")
	flag.Parse()
	if err := runArray(*small); err != nil {
		log.Fatal(err)
	}
	if err := runFleet(*small); err != nil {
		log.Fatal(err)
	}
	if err := runSupervised(*small); err != nil {
		log.Fatal(err)
	}
}

func runArray(small bool) error {
	span := int64(24000) // working-set pages, beyond one array's capacity
	warm, extra := 20000, 10000
	if small {
		span, warm, extra = 6000, 4000, 2000
	}
	mkDrive := func(name string) (srccache.Device, error) {
		cfg := srccache.SATAMLCConfig(name, ssdCap)
		cfg.EraseGroupSize = egs
		cfg.WriteCacheBytes = 4 << 20
		return srccache.NewSSD(cfg)
	}
	drives := make([]srccache.Device, 3)
	for i := range drives {
		d, err := mkDrive(fmt.Sprintf("ssd%d", i))
		if err != nil {
			return err
		}
		drives[i] = d
	}
	prim, err := srccache.NewPrimary(srccache.PrimaryConfig{DiskCapacity: primCap / 4})
	if err != nil {
		return err
	}
	cache, err := srccache.NewCache(srccache.CacheConfig{
		SSDs:           drives,
		Primary:        prim,
		EraseGroupSize: egs,
		SegmentColumn:  64 << 10,
		TrackContent:   true,
	})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(7))
	versions := make(map[int64]uint64)
	var at srccache.Time
	apply := func(n int, label string) error {
		for i := 0; i < n; i++ {
			lba := rng.Int63n(span)
			done, err := cache.Submit(at, srccache.Request{
				Op: srccache.OpWrite, Off: lba * srccache.PageSize, Len: srccache.PageSize,
			})
			if err != nil {
				return fmt.Errorf("%s write: %w", label, err)
			}
			versions[lba]++
			if done > at {
				at = done
			}
		}
		return nil
	}
	verify := func(label string) error {
		for lba, v := range versions {
			want := srccache.DataTag(lba, v)
			if tag, _, err := cache.ReadCheck(at, lba); err == nil {
				if tag != want {
					return fmt.Errorf("%s: page %d wrong in cache", label, lba)
				}
				continue
			}
			// Not cached: the latest version must be safe on primary.
			got, err := prim.Content().ReadTag(lba)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("%s: page %d neither cached nor destaged", label, lba)
			}
		}
		fmt.Printf("%-22s %6d pages cached, %d groups, all content verified\n",
			label, cache.CachedPages(), cache.Groups())
		return nil
	}

	if err := apply(warm, "warmup"); err != nil {
		return err
	}
	if err := verify("3-drive RAID-5:"); err != nil {
		return err
	}

	// Expand to 5 drives (two new ones join; the existing three stay).
	bigger := append(append([]srccache.Device{}, drives...), nil, nil)
	for i := 3; i < 5; i++ {
		d, err := mkDrive(fmt.Sprintf("ssd%d", i))
		if err != nil {
			return err
		}
		bigger[i] = d
	}
	done, err := cache.Resize(at, bigger)
	if err != nil {
		return err
	}
	fmt.Printf("expanded to 5 drives in %v of virtual time\n", done.Sub(at))
	at = done
	if err := apply(extra, "post-expand"); err != nil {
		return err
	}
	if err := verify("5-drive RAID-5:"); err != nil {
		return err
	}

	// Contract back to 3 drives: overflow destages to primary, nothing is
	// lost.
	done, err = cache.Resize(at, bigger[:3])
	if err != nil {
		return err
	}
	fmt.Printf("contracted to 3 drives in %v of virtual time\n", done.Sub(at))
	at = done
	if err := verify("3-drive again:"); err != nil {
		return err
	}
	fmt.Println("scale-out/scale-in round trip complete — no data lost")
	return nil
}

// fleetNode is one live server plus the in-process handles the demo uses to
// kill, restart, and verify it.
type fleetNode struct {
	id    string
	addr  string
	back  netblock.Backend
	chain *fleet.ChainBackend
	srv   *netblock.Server
}

func dialOpts() netblock.ClientOptions {
	return netblock.ClientOptions{DialTimeout: 2 * time.Second, Timeout: 5 * time.Second}
}

func startFleetNode(id string, ring *cluster.Ring) (*fleetNode, error) {
	back, err := netblock.MemBackend(ring.Size())
	if err != nil {
		return nil, err
	}
	chain, err := fleet.NewChainBackend(back, id, ring, dialOpts())
	if err != nil {
		return nil, err
	}
	srv, err := netblock.NewServerWith(chain)
	if err != nil {
		return nil, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &fleetNode{id: id, addr: addr.String(), back: back, chain: chain, srv: srv}, nil
}

func runFleet(small bool) error {
	ranges, rangeBytes := 32, int64(64<<10)
	if small {
		ranges, rangeBytes = 16, int64(16<<10)
	}

	// Boot three nodes, then rebuild the ring with their bound addresses —
	// the bootstrap a deployment's config file provides up front.
	ids := []string{"alpha", "beta", "gamma"}
	var boot []cluster.Member
	for _, id := range ids {
		boot = append(boot, cluster.Member{ID: id})
	}
	bootRing, err := cluster.NewRing(2, ranges, rangeBytes, boot)
	if err != nil {
		return err
	}
	nodes := make(map[string]*fleetNode)
	var members []cluster.Member
	for _, id := range ids {
		n, err := startFleetNode(id, bootRing)
		if err != nil {
			return err
		}
		defer n.srv.Close()
		defer n.chain.Close()
		nodes[id] = n
		members = append(members, cluster.Member{ID: id, Addr: n.addr})
	}
	ring, err := cluster.NewRing(2, ranges, rangeBytes, members)
	if err != nil {
		return err
	}
	for _, n := range nodes {
		if err := n.chain.SetRing(ring); err != nil {
			return err
		}
		n.srv.SetEpoch(1)
	}
	fl, err := fleet.New(ring, dialOpts())
	if err != nil {
		return err
	}
	defer fl.Close()

	model := make([]byte, ring.Size())
	rand.New(rand.NewSource(11)).Read(model)
	if err := fl.WriteAt(model, 0); err != nil {
		return err
	}
	readBack := func(r *cluster.Ring, label string) error {
		got := make([]byte, r.Size())
		if err := fl.ReadAt(got, 0); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		if !bytes.Equal(got, model) {
			return fmt.Errorf("%s: volume diverges from model", label)
		}
		return nil
	}
	if err := readBack(ring, "initial readback"); err != nil {
		return err
	}
	fmt.Printf("fleet of %d nodes serving %d KiB, 2-way chained replication: content verified\n",
		len(ids), ring.Size()>>10)

	// Kill beta. Every range it headed fails over to the surviving replica,
	// for reads and writes both.
	nodes["beta"].srv.Close()
	if err := readBack(ring, "degraded readback"); err != nil {
		return err
	}
	patch := bytes.Repeat([]byte{0xAB}, 2048)
	copy(model[0:], patch)
	if err := fl.WriteAt(patch, 0); err != nil {
		return fmt.Errorf("degraded write: %w", err)
	}
	fmt.Printf("beta killed: reads and writes fail over (%d failovers so far)\n", fl.Stats().Failovers)

	// Restart beta with a wiped disk and repair every range it owns from
	// the surviving replicas — anti-entropy restores byte identity.
	old := nodes["beta"]
	old.chain.Close()
	back, err := netblock.MemBackend(ring.Size())
	if err != nil {
		return err
	}
	chain, err := fleet.NewChainBackend(back, "beta", ring, dialOpts())
	if err != nil {
		return err
	}
	srv, err := netblock.NewServerWith(chain)
	if err != nil {
		return err
	}
	if _, err := srv.Listen(old.addr); err != nil {
		return err
	}
	srv.SetEpoch(1)
	nodes["beta"] = &fleetNode{id: "beta", addr: old.addr, back: back, chain: chain, srv: srv}
	defer srv.Close()
	defer chain.Close()

	repaired := 0
	for rng := 0; rng < ranges; rng++ {
		if !ring.OwnedBy(rng, "beta") {
			continue
		}
		if err := fl.RepairRange("beta", rng); err != nil {
			return fmt.Errorf("repair range %d: %w", rng, err)
		}
		base := int64(rng) * rangeBytes
		got := make([]byte, rangeBytes)
		if err := back.ReadAt(got, base); err != nil {
			return err
		}
		if !bytes.Equal(got, model[base:base+rangeBytes]) {
			return fmt.Errorf("range %d on beta not byte-identical after repair", rng)
		}
		repaired++
	}
	if err := readBack(ring, "post-repair readback"); err != nil {
		return err
	}
	fmt.Printf("beta wiped and restarted: %d ranges repaired from replicas, byte-identical\n", repaired)

	// A fourth node joins: its ranges stream from the old owners while they
	// keep serving, then the whole fleet swaps to the new ring at epoch 2.
	joiner, err := startFleetNode("delta", bootRing)
	if err != nil {
		return err
	}
	defer joiner.srv.Close()
	defer joiner.chain.Close()
	nodes["delta"] = joiner
	next, err := ring.WithJoin(cluster.Member{ID: "delta", Addr: joiner.addr})
	if err != nil {
		return err
	}
	moves := cluster.Moves(ring, next)
	if err := fl.Rebalance(ring, next); err != nil {
		return err
	}
	for _, n := range nodes {
		if err := n.chain.SetRing(next); err != nil {
			return err
		}
		n.srv.SetEpoch(2)
	}
	if err := fl.SetRing(next); err != nil {
		return err
	}
	if err := readBack(next, "post-join readback"); err != nil {
		return err
	}
	st := fl.Stats()
	fmt.Printf("delta joined: %d ranges streamed, fleet at epoch 2; %d reads, %d writes, %d repairs total\n",
		len(moves), st.Reads, st.Writes, st.Repairs)
	fmt.Println("fleet scale-out complete — no acknowledged data lost at any step")
	return nil
}

// runSupervised is act three: act two's faults, healed autonomously. The
// supervisor daemon owns the table; the "operator" only kills a node,
// brings it back wiped, and asks for a join. Detection, quarantine,
// repair, and the rebalance all happen inside Tick.
func runSupervised(small bool) error {
	ranges, rangeBytes := 32, int64(64<<10)
	if small {
		ranges, rangeBytes = 16, int64(16<<10)
	}
	ids := []string{"east", "west", "north"}
	var boot []cluster.Member
	for _, id := range ids {
		boot = append(boot, cluster.Member{ID: id})
	}
	bootRing, err := cluster.NewRing(2, ranges, rangeBytes, boot)
	if err != nil {
		return err
	}
	nodes := make(map[string]*fleetNode)
	var members []cluster.Member
	for _, id := range ids {
		n, err := startFleetNode(id, bootRing)
		if err != nil {
			return err
		}
		defer n.srv.Close()
		defer n.chain.Close()
		nodes[id] = n
		members = append(members, cluster.Member{ID: id, Addr: n.addr})
	}
	ring, err := cluster.NewRing(2, ranges, rangeBytes, members)
	if err != nil {
		return err
	}

	// The supervisor's journal survives its own crashes; the push closure
	// resolves the node through the map so a restarted node (new chain,
	// new server, same address) keeps receiving epochs.
	dir, err := os.MkdirTemp("", "scaleout-supervisor")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	supNode := func(id, addr string) supervisor.Node {
		return supervisor.Node{
			Member: cluster.Member{ID: id, Addr: addr},
			Push: func(r *cluster.Ring, epoch uint64) error {
				n := nodes[id]
				if err := n.chain.SetRing(r); err != nil {
					return err
				}
				n.srv.SetEpoch(epoch)
				return nil
			},
		}
	}
	var supNodes []supervisor.Node
	for _, m := range members {
		supNodes = append(supNodes, supNode(m.ID, m.Addr))
	}
	sup, err := supervisor.New(supervisor.Config{
		Ring:        ring,
		Nodes:       supNodes,
		JournalPath: filepath.Join(dir, "table.journal"),
		Detector:    cluster.DetectorConfig{FailAfter: 2},
		Client:      dialOpts(),
	})
	if err != nil {
		return err
	}
	defer sup.Close()
	tickUntil := func(what string, cond func(supervisor.Status) bool) (supervisor.Status, error) {
		var st supervisor.Status
		for i := 0; i < 60; i++ {
			var err error
			if st, err = sup.Tick(); err != nil {
				return st, err
			}
			if cond(st) {
				return st, nil
			}
		}
		return st, fmt.Errorf("supervisor never reached %s: %+v", what, st)
	}

	fl, err := fleet.New(ring, dialOpts())
	if err != nil {
		return err
	}
	defer fl.Close()
	fl.SetRefetch(sup.Ring)

	model := make([]byte, ring.Size())
	rand.New(rand.NewSource(23)).Read(model)
	if err := fl.WriteAt(model, 0); err != nil {
		return err
	}
	fmt.Printf("supervised fleet of %d nodes at epoch %d: content written\n", len(ids), sup.Epoch())

	// Kill west. The supervisor notices from its own pings — no operator
	// report — and quarantines every range west owned.
	nodes["west"].srv.Close()
	st, err := tickUntil("detection", func(st supervisor.Status) bool {
		return len(st.Quarantined) > 0
	})
	if err != nil {
		return err
	}
	fmt.Printf("west killed: detected down in %v, %d range copies quarantined\n",
		st.DetectLatency, len(st.Quarantined))
	patch := bytes.Repeat([]byte{0xC7}, 4096)
	copy(model[0:], patch)
	if err := fl.WriteAt(patch, 0); err != nil {
		return fmt.Errorf("write during quarantine: %w", err)
	}

	// Bring west back with an empty disk. The supervisor streams every
	// quarantined range back hash-verified, then lifts the quarantine.
	old := nodes["west"]
	old.chain.Close()
	back, err := netblock.MemBackend(ring.Size())
	if err != nil {
		return err
	}
	chain, err := fleet.NewChainBackend(back, "west", sup.Ring(), dialOpts())
	if err != nil {
		return err
	}
	srv, err := netblock.NewServerWith(chain)
	if err != nil {
		return err
	}
	if _, err := srv.Listen(old.addr); err != nil {
		return err
	}
	srv.SetEpoch(sup.Epoch())
	nodes["west"] = &fleetNode{id: "west", addr: old.addr, back: back, chain: chain, srv: srv}
	defer srv.Close()
	defer chain.Close()
	st, err = tickUntil("repair", func(st supervisor.Status) bool {
		return len(st.Quarantined) == 0 && st.Repairs > 0
	})
	if err != nil {
		return err
	}
	fmt.Printf("west restarted wiped: %d repairs streamed, quarantine empty, MTTR %v\n",
		st.Repairs, st.RepairLatency)

	// Ask for a join; the supervisor journals the transition, streams the
	// moves, and commits the new epoch on its own ticks.
	joiner, err := startFleetNode("south", sup.Ring())
	if err != nil {
		return err
	}
	defer joiner.srv.Close()
	defer joiner.chain.Close()
	nodes["south"] = joiner
	if err := sup.Register(supNode("south", joiner.addr)); err != nil {
		return err
	}
	if err := sup.BeginJoin(cluster.Member{ID: "south", Addr: joiner.addr}); err != nil {
		return err
	}
	st, err = tickUntil("join commit", func(st supervisor.Status) bool {
		return st.Phase == cluster.SupStable && st.Commits > 0 && len(st.Quarantined) == 0
	})
	if err != nil {
		return err
	}
	got := make([]byte, len(model))
	if err := fl.ReadAt(got, 0); err != nil {
		return err
	}
	if !bytes.Equal(got, model) {
		return fmt.Errorf("supervised volume diverges from model after join")
	}
	fmt.Printf("south joined autonomously: epoch %d, %d commits, content verified\n",
		st.Epoch, st.Commits)
	fmt.Println("supervised scale-out complete — detect, quarantine, repair, rebalance: zero operator steps")
	return nil
}
