// Tracereplay: reproduce the paper's main experimental methodology — the
// Write/Mixed/Read groups of Microsoft server traces (Table 6), each trace
// replayed by four threads against an SRC cache — and compare Sel-GC with
// plain destaging (S2D), the heart of Table 8 and Figure 7.
package main

import (
	"fmt"
	"log"

	"srccache"
)

// scale shrinks the trace footprints to 1/64 of the paper's so the example
// finishes in seconds; the cache-to-working-set ratio is what matters.
const scale = 1.0 / 64

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, group := range []string{"Write", "Mixed", "Read"} {
		fmt.Printf("--- %s group ---\n", group)
		for _, gc := range []srccache.GCPolicy{srccache.SelGC, srccache.S2D} {
			mbps, hit, err := runGroup(group, gc)
			if err != nil {
				return err
			}
			fmt.Printf("  %-7v  %7.1f MB/s  hit ratio %.2f\n", gc, mbps, hit)
		}
	}
	return nil
}

func runGroup(group string, gc srccache.GCPolicy) (float64, float64, error) {
	specs, err := srccache.TraceGroup(group)
	if err != nil {
		return 0, 0, err
	}
	// Lay the traces side by side in the backing volume, as the paper's
	// replayer does across its 22 volumes.
	var sources []srccache.WorkloadSource
	var offset int64
	for _, spec := range specs {
		synth, err := srccache.NewTraceSynth(srccache.TraceSynthConfig{
			Spec:   spec,
			Scale:  scale,
			Offset: offset,
		})
		if err != nil {
			return 0, 0, err
		}
		offset += synth.Span()
		sources = append(sources, synth)
	}

	sys, err := srccache.NewSystem(srccache.SystemConfig{
		SSDCapacity:     64 << 20, // keep cache well below the working set
		EraseGroupSize:  16 << 20,
		PrimaryCapacity: offset + (64 << 20),
		Cache:           srccache.CacheConfig{GC: gc},
	})
	if err != nil {
		return 0, 0, err
	}
	res, err := srccache.RunBench(sys.Cache, sources, srccache.BenchOptions{
		SlotsPerSource: 4, // "each trace being replayed by four threads"
		MaxRequests:    40_000,
	})
	if err != nil {
		return 0, 0, err
	}
	return res.MBps(), sys.Cache.Counters().HitRatio(), nil
}
